"""Threaded execution backend: §4's worker model on real threads.

The sim backend replays the paper's architecture on a virtual clock;
this backend runs it for real.  ``SaberConfig(execution="threads")``
starts one **dispatcher thread** plus N **CPU worker threads** and (when
enabled) one **GPGPU worker thread**:

* the dispatcher alone pulls source data, appends to the circular input
  buffers (single-writer discipline, §4.1) and cuts fixed-size query
  tasks into the bounded system-wide queue, blocking on queue *and*
  buffer backpressure;
* workers claim tasks from the shared queue under the hybrid lookahead
  scheduling discipline — ``Scheduler.select`` runs under the queue
  lock, since it both inspects the queue and mutates the
  switch-threshold counters — and execute each task's batch operator
  function through ``query.execution_operator`` (the single-pass fused
  kernel when the fusion layer compiled one, the user's operator chain
  otherwise);
* workers only ever see read-only ``(start, stop)`` buffer ranges; the
  per-query result stage re-orders out-of-order completions and frees
  buffer space strictly in task order, which is what keeps the
  single-writer buffers safe.

The sim backend's *simulated* starvation guard (a scheduled re-check) is
replaced by condition-variable wakeups: workers sleep on the queue
condition and are woken whenever a task arrives, a task completes, or
the dispatcher finishes/blocks — the forced-FCFS escape fires only when
nothing is in flight and the dispatcher cannot make progress, mirroring
the sim semantics exactly.

Timing is wall-clock (``time.perf_counter`` relative to run start), so
reported throughput is the real machine's — not the paper server's.
The sim backend's *modelled* dispatch bandwidth is deliberately not
applied (the whole point is to run as fast as the hardware allows), but
a user-specified ``ingest_bandwidth`` cap *is* honoured: the dispatcher
paces task creation so ingested bytes per wall-clock second stay under
the cap, mirroring the sim backend's network-bound runs.
Query *outputs* are backend-independent: the result stage emits in
task-id order either way, which the equivalence tests assert.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING

from ..analysis.lockdep import make_condition, make_lock
from ..errors import IngestInterrupted, SimulationError
from ..sim.measurements import TaskRecord
from .scheduler import CPU, GPU
from .task import QueryTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports us)
    from .engine import QueryRun, SaberEngine

#: upper bound on a condition wait; a belt-and-braces re-check interval,
#: not a scheduling period — every state change notifies the condition.
_WAIT_TIMEOUT = 0.05


class ThreadedExecutor:
    """Runs a configured :class:`SaberEngine`'s queries on real threads."""

    def __init__(self, engine: "SaberEngine") -> None:
        self.engine = engine
        self.config = engine.config
        self.scheduler = engine.scheduler
        self.measurements = engine.measurements
        self.runs: "list[QueryRun]" = engine.runs
        self._run_by_query = {id(run.query): run for run in self.runs}
        self._mutex = make_lock("core.executor.ThreadedExecutor._mutex")
        self._cond = make_condition("core.executor.ThreadedExecutor._mutex", lock=self._mutex)
        self.queue: "list[QueryTask]" = []
        self._inflight = 0
        self._dispatch_done = False
        self._dispatch_waiting = False
        self._failure: "BaseException | None" = None
        self._t0 = 0.0

    # -- clock ---------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    # -- run -----------------------------------------------------------------

    def run(self, tasks_per_query: int) -> float:
        """Execute ``tasks_per_query`` tasks per query; returns elapsed s.

        The clock continues from the engine's cumulative elapsed time, so
        incremental runs (a long-lived session calling ``run`` repeatedly)
        produce monotonically increasing task timestamps and throughput
        derived over the combined processing span — mirroring the sim
        backend's cumulative ``loop.now``.  Idle wall time *between* runs
        is excluded, as it is not processing time.
        """
        self._t0 = time.perf_counter() - self.engine._last_elapsed
        threads = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(tasks_per_query,),
                name="saber-dispatcher",
                daemon=True,
            )
        ]
        worker_id = 0
        if self.config.use_cpu:
            for _ in range(self.config.cpu_workers):
                threads.append(
                    threading.Thread(
                        target=self._worker_loop,
                        args=(CPU,),
                        name=f"saber-cpu-{worker_id}",
                        daemon=True,
                    )
                )
                worker_id += 1
        if self.config.use_gpu:
            gpu_name = (
                "saber-accel" if self.engine.accelerator is not None else "saber-gpgpu"
            )
            threads.append(
                threading.Thread(
                    target=self._worker_loop,
                    args=(GPU,),
                    name=gpu_name,
                    daemon=True,
                )
            )
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if self._failure is not None:
            raise self._failure
        if self.queue or self._inflight:
            raise SimulationError(
                f"threaded run ended with {len(self.queue)} queued and "
                f"{self._inflight} in-flight tasks"
            )
        return self._now()

    def _fail(self, exc: BaseException) -> None:
        with self._cond:
            if self._failure is None:
                self._failure = exc
            self._cond.notify_all()

    # -- dispatcher thread -----------------------------------------------------

    def _dispatch_loop(self, tasks_per_query: int) -> None:
        try:
            rr_index = 0
            ingest = self.config.ingest_bandwidth
            ingest_credit = 0.0  # wall-clock time already "paid for"
            while True:
                shed = False
                with self._cond:
                    pending = [
                        r
                        for r in self.runs
                        if r.tasks_dispatched < tasks_per_query
                        and not r.dispatcher.exhausted
                    ]
                    if not pending or self._failure is not None or self.engine.stop_requested:
                        break
                    run = pending[rr_index % len(pending)]
                    rr_index += 1
                    while True:
                        if self._failure is not None or self.engine.stop_requested:
                            return
                        if len(self.queue) < self.config.queue_capacity:
                            if run.dispatcher.can_create_task():
                                break
                            # Buffer backpressure: the policy decides
                            # (raises the typed error under 'error').
                            action = run.dispatcher.backpressure_action(self.config.backpressure)
                            if action == "shed":
                                shed = True
                                break
                        if not self._dispatch_waiting:
                            self._dispatch_waiting = True
                            # One wakeup on the transition so idle workers
                            # re-check the starvation guard; notifying every
                            # tick would thundering-herd the queue lock.
                            self._cond.notify_all()
                        self._cond.wait(_WAIT_TIMEOUT)
                    self._dispatch_waiting = False
                    if not shed:
                        # Reserve the slot before leaving the lock; only this
                        # thread creates tasks, so the cursors stay coherent.
                        run.tasks_dispatched += 1
                if shed:
                    # drop_oldest: discard one task's worth of incoming
                    # data so ingest stays live (outside the queue lock).
                    try:
                        run.dispatcher.shed_task()
                    except IngestInterrupted:
                        pass  # stop requested; outer loop breaks
                    continue
                # Source pull + buffer insert happen outside the queue
                # lock: the buffers lock their own pointer advancement.
                try:
                    task = run.dispatcher.create_task(self._now())
                except IngestInterrupted:
                    # Stop requested during a blocking pull; staged data
                    # survives in the dispatcher for the next run.
                    with self._cond:
                        run.tasks_dispatched -= 1
                    continue
                if task is None:
                    # End of stream with no residual data: un-reserve and
                    # wake workers so they observe dispatch completion.
                    with self._cond:
                        run.tasks_dispatched -= 1
                        self._cond.notify_all()
                    continue
                with self._cond:
                    self.queue.append(task)
                    self._cond.notify_all()
                if ingest is not None:
                    # Token-bucket pacing against the ingest cap: each
                    # task spends size/rate seconds of wall-clock budget.
                    ingest_credit = max(ingest_credit, self._now()) + task.size_bytes / ingest
                    delay = ingest_credit - self._now()
                    if delay > 0:
                        time.sleep(delay)
        except BaseException as exc:  # propagated to run() by _fail
            self._fail(exc)
        finally:
            with self._cond:
                self._dispatch_done = True
                self._cond.notify_all()

    # -- worker threads ---------------------------------------------------------

    def _worker_loop(self, processor: str) -> None:
        try:
            while True:
                with self._cond:
                    task = None
                    while True:
                        if self._failure is not None:
                            return
                        task = self._claim(processor)
                        if task is not None:
                            self._inflight += 1
                            break
                        if self._dispatch_done and not self.queue:
                            return
                        self._cond.wait(_WAIT_TIMEOUT)
                self._execute(task, processor)
        except BaseException as exc:  # propagated to run() by _fail
            self._fail(exc)

    def _claim(self, processor: str) -> "QueryTask | None":
        """Pick a task under the queue lock (scheduler state included)."""
        if not self.queue:
            return None
        index = self.scheduler.select(self.queue, processor)
        if index is None:
            # Condition-variable starvation guard: when nothing is in
            # flight and the dispatcher is blocked or done, no future
            # event would ever satisfy the lookahead — take the head.
            if self._inflight == 0 and (self._dispatch_done or self._dispatch_waiting):
                index = 0
            else:
                return None
        task = self.queue.pop(index)
        self._cond.notify_all()  # queue space freed; backlog changed
        return task

    def _execute(self, task: QueryTask, processor: str) -> None:
        engine = self.engine
        started = time.perf_counter()
        slices, __, __, __ = engine._materialise(task)
        result, __, __ = engine._run_operator(task, slices, gpu=processor == GPU)
        duration = max(time.perf_counter() - started, 1e-9)
        now = self._now()
        run = self._run_by_query[id(task.query)]
        self.measurements.record_task(
            TaskRecord(
                query=task.query.name,
                processor=processor,
                created=task.created_at,
                completed=now,
                input_bytes=task.size_bytes,
                input_tuples=task.tuple_count,
            )
        )
        if result is not None:
            # The per-query result-stage lock serialises the in-order
            # drain; buffer space is released in task order inside.
            emitted = run.result_stage.submit(task, result, now)
            for record in emitted:
                self.measurements.record_latency(record.emit_time, record.data_time)
        else:
            self.measurements.record_latency(now, task.created_at)
        if processor == CPU:
            tasks_per_second = self.config.cpu_workers / duration
        else:
            tasks_per_second = 1.0 / duration
        # Matrix bookkeeping locks internally — no queue-lock contention.
        self.scheduler.task_finished(task, processor, tasks_per_second, now)
        with self._cond:
            run.tasks_completed += 1
            self._inflight -= 1
            self._cond.notify_all()
