"""Open-addressing hash table for GPGPU GROUP-BY (§5.4).

The paper's kernel populates a linear-probing table per work group:
threads compare-and-set the index of the first tuple that occupied a
slot, then atomically accumulate aggregates.  We reproduce the same data
structure — flat numpy arrays for keys, occupancy and the
(sum, count, min, max) accumulators — with the same linear-probing
collision policy.  Insertion is sequential per probe chain (the numpy
port of the atomic loop), which is fine at batch scale and keeps the
semantics identical to the CPU table so either processor can look up the
other's entries, as the paper requires.
"""

from __future__ import annotations

import numpy as np

from ..errors import ExecutionError


class OpenAddressingTable:
    """Linear-probing table keyed by int64 composite keys."""

    def __init__(self, capacity: int, key_width: int) -> None:
        if capacity <= 0:
            raise ExecutionError("hash table capacity must be positive")
        self.capacity = int(capacity)
        self.key_width = int(key_width)
        self.keys = np.zeros((self.capacity, self.key_width), dtype=np.int64)
        self.occupied = np.zeros(self.capacity, dtype=bool)
        # Accumulator layout mirrors Accumulator: sum, count, min, max.
        self.acc = np.zeros((self.capacity, 4), dtype=np.float64)
        self.acc[:, 2] = np.inf
        self.acc[:, 3] = -np.inf
        self.size = 0

    def _hash(self, key: np.ndarray) -> int:
        # FNV-1a over the key words — same function on CPU and GPGPU paths.
        h = np.uint64(14695981039346656037)
        with np.errstate(over="ignore"):  # uint64 wrap-around is intended
            for word in key:
                h = np.uint64(h ^ np.uint64(np.int64(word).view(np.uint64)))
                h = np.uint64(h * np.uint64(1099511628211))
        return int(h % np.uint64(self.capacity))

    def _probe(self, key: np.ndarray) -> int:
        """Slot of ``key``, claiming a free slot on first insert."""
        slot = self._hash(key)
        for __ in range(self.capacity):
            if not self.occupied[slot]:
                self.occupied[slot] = True
                self.keys[slot] = key
                self.size += 1
                return slot
            if np.array_equal(self.keys[slot], key):
                return slot
            slot = (slot + 1) % self.capacity
        raise ExecutionError("hash table is full; resize the pooled table")

    def insert(self, keys: np.ndarray, values: "np.ndarray | None") -> None:
        """Accumulate a batch of (key row, value) pairs."""
        keys = np.atleast_2d(np.asarray(keys, dtype=np.int64))
        n = len(keys)
        vals = (
            np.zeros(n, dtype=np.float64)
            if values is None
            else np.asarray(values, dtype=np.float64)
        )
        for i in range(n):
            slot = self._probe(keys[i])
            self.acc[slot, 0] += vals[i]
            self.acc[slot, 1] += 1.0
            if vals[i] < self.acc[slot, 2]:
                self.acc[slot, 2] = vals[i]
            if vals[i] > self.acc[slot, 3]:
                self.acc[slot, 3] = vals[i]

    def lookup(self, key: np.ndarray) -> "np.ndarray | None":
        """Accumulator row for ``key`` or ``None`` if absent."""
        key = np.asarray(key, dtype=np.int64)
        slot = self._hash(key)
        for __ in range(self.capacity):
            if not self.occupied[slot]:
                return None
            if np.array_equal(self.keys[slot], key):
                return self.acc[slot]
            slot = (slot + 1) % self.capacity
        return None

    def compact(self) -> "tuple[np.ndarray, np.ndarray]":
        """(keys, accumulators) of occupied slots, sorted by key.

        The paper compacts sparsely populated tables at the end of
        processing; sorting gives deterministic output for tests.
        """
        keys = self.keys[self.occupied]
        acc = self.acc[self.occupied]
        if len(keys) == 0:
            return keys, acc
        order = np.lexsort(keys.T[::-1])
        return keys[order], acc[order]
