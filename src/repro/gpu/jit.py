"""Optional numba JIT layer for the executable accelerator backend.

The accelerator (:mod:`repro.gpu.accelerator`) runs whole-batch kernels;
where numba is installed the *exact-arithmetic* inner loops — boolean
mask compaction and integer prefix sums — are compiled to machine code,
and everywhere else (numba absent, or ``REPRO_NO_NUMBA=1`` set) the same
kernels fall back to vectorised numpy.

Only integer/boolean kernels are ever jitted.  Floating-point
reductions deliberately stay on numpy: a jitted sequential-loop float
sum would differ from numpy's pairwise summation in the last bits and
break the engine's bitwise-equivalence invariant across backends.  Both
paths below are exact, so jit-on and jit-off runs produce identical
results — the CI optional-dependency matrix leg asserts it.

``HAVE_NUMBA`` reports which path is live; ``REPRO_NO_NUMBA`` (any
non-empty value) forces the numpy fallback even when numba is
importable, which is how the fallback is exercised deterministically.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = ["HAVE_NUMBA", "compact_mask", "exclusive_scan"]


def _numba_njit():
    """Return ``numba.njit`` when numba is enabled, else ``None``."""
    if os.environ.get("REPRO_NO_NUMBA"):
        return None
    try:  # pragma: no cover - exercised only where numba is installed
        from numba import njit
    except Exception:  # ImportError, or a broken install
        return None
    return njit  # pragma: no cover - exercised only where numba is installed


_NJIT = _numba_njit()

#: True when the jitted kernel path is live (numba importable and not
#: disabled via ``REPRO_NO_NUMBA``); False means the numpy fallback runs.
HAVE_NUMBA: bool = _NJIT is not None


def _exclusive_scan_py(counts: np.ndarray) -> np.ndarray:
    """Exclusive integer prefix sum (numpy fallback; exact)."""
    out = np.empty(len(counts), dtype=np.int64)
    if len(counts):
        out[0] = 0
        np.cumsum(counts[:-1], dtype=np.int64, out=out[1:])
    return out


def _compact_mask_py(mask: np.ndarray) -> np.ndarray:
    """Indices of the true lanes, ascending (numpy fallback; exact)."""
    return np.nonzero(mask)[0].astype(np.int64, copy=False)


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_NJIT(cache=True)
    def _exclusive_scan_jit(counts):
        out = np.empty(len(counts), dtype=np.int64)
        total = np.int64(0)
        for i in range(len(counts)):
            out[i] = total
            total += counts[i]
        return out

    @_NJIT(cache=True)
    def _compact_mask_jit(mask):
        n = np.int64(0)
        for i in range(len(mask)):
            if mask[i]:
                n += 1
        out = np.empty(n, dtype=np.int64)
        k = np.int64(0)
        for i in range(len(mask)):
            if mask[i]:
                out[k] = i
                k += 1
        return out


def exclusive_scan(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum over an integer array.

    Integer arithmetic is associative, so the jitted loop and the numpy
    ``cumsum`` fallback are bitwise-identical.
    """
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
        return _exclusive_scan_jit(counts)
    return _exclusive_scan_py(counts)


def compact_mask(mask: np.ndarray) -> np.ndarray:
    """Indices of the true lanes of a boolean mask, ascending.

    The scan-compaction primitive behind the accelerator's selection
    kernel; exact on both paths (indices are integers).
    """
    mask = np.ascontiguousarray(mask, dtype=np.bool_)
    if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
        return _compact_mask_jit(mask)
    return _compact_mask_py(mask)
