"""Simulated GPGPU device description (§2.2).

Mirrors the evaluation hardware — an NVIDIA Quadro K5200: 2,304 cores
grouped into streaming multiprocessors, small caches, attached over
PCIe 3.0 ×16.  The figures here feed the GPGPU cost model
(:mod:`repro.hardware.gpu`) and are deliberately kept as a plain data
object so alternative devices can be described for sensitivity studies.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuDeviceSpec:
    """Static description of a simulated GPGPU."""

    name: str = "SimQuadroK5200"
    cores: int = 2304
    streaming_multiprocessors: int = 12
    #: sustained per-core arithmetic rate used by the kernel-time model.
    seconds_per_core_op: float = 1.0e-9
    #: fixed kernel-launch overhead per query task (driver + dispatch).
    kernel_launch_seconds: float = 20e-6
    #: work-group size: tuples of the same window share one SM's cache.
    work_group_size: int = 256

    @property
    def cores_per_sm(self) -> int:
        """Cores per streaming multiprocessor (the SM-local lane count)."""
        return self.cores // self.streaming_multiprocessors


DEFAULT_GPU = GpuDeviceSpec()
