"""PCIe bus transfer model (§2.2, §5.2).

A discrete GPGPU is fed over PCIe; a DMA transfer costs a fixed setup
latency (~10 µs, [43]) plus bytes over the effective bandwidth
(~8 GB/s for PCIe 3.0 ×16).  The bus is full duplex: host-to-device
(movein) and device-to-host (moveout) proceed independently, which the
five-stage pipeline exploits.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieBus:
    """Bandwidth/latency description of the accelerator link."""

    bandwidth_bytes_per_second: float = 8e9
    dma_latency_seconds: float = 10e-6

    def transfer_seconds(self, size_bytes: float) -> float:
        """Duration of one DMA transfer of ``size_bytes``."""
        if size_bytes <= 0:
            return 0.0
        return self.dma_latency_seconds + size_bytes / self.bandwidth_bytes_per_second


DEFAULT_PCIE = PcieBus()
