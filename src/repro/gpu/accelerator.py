"""The executable accelerator device: whole-batch kernels + transfer stage.

Where :mod:`repro.gpu.kernels` gives the *simulator* a GPGPU kernel
semantics (results computed for real, execution time charged by the
cost models), this module is a third **executable** backend: a
vectorised batch-kernel accelerator that really runs each query task's
operator as whole-batch numpy operations — numba-jitted where available
(:mod:`repro.gpu.jit`), pure numpy otherwise — behind an explicit
host↔device transfer stage standing in for PCIe.

One :class:`AcceleratorDevice` occupies the engine's GPGPU worker slot
under ``SaberConfig(execution="accelerator")`` (accelerator-only) and
``execution="hybrid"`` (CPU worker threads + the accelerator, with HLS
picking the device per task from observed throughput feedback).  Its
:meth:`~AcceleratorDevice.execute` is the per-task path:

* **movein** — every input batch is staged into fresh device-side
  storage (a real memcpy, the wall-clock stand-in for the DMA
  transfer), and the modelled PCIe cost of the same bytes
  (:meth:`~repro.gpu.pcie.PcieBus.transfer_seconds`) is recorded next
  to the measured copy time;
* **kernel** — selection runs the scan-compaction kernel over the
  jitted (or numpy) mask-compaction primitive; joins run the
  count-then-compact kernel; aggregation/GROUP-BY/projection run the
  shared vectorised implementation, exactly like the simulated GPGPU —
  which is what keeps outputs **bitwise identical** to the sim/threads/
  processes backends (float reductions are never re-ordered);
* **moveout** — complete output rows are copied back out of the staged
  storage, with the modelled PCIe cost of the output bytes recorded
  alongside.

The device keeps cumulative :class:`AcceleratorStats` (tasks, bytes
each way, measured vs modelled transfer seconds, kernel seconds) that
the serve-layer metrics export as ``saber_accel_*`` series at scrape
time.  ``throttle_seconds`` artificially slows every task — the knob
the HLS skew tests and benchmarks use to prove that throughput-matrix
feedback migrates tasks back to the CPU workers when the accelerator
degrades.
"""

from __future__ import annotations

import time

import numpy as np

from ..analysis.lockdep import make_lock
from ..operators.base import BatchResult, Operator, StreamSlice
from ..operators.join import ThetaJoin
from ..operators.selection import Selection
from ..relational.tuples import TupleBatch
from . import jit
from .device import DEFAULT_GPU, GpuDeviceSpec
from .kernels import gpu_join
from .pcie import DEFAULT_PCIE, PcieBus

__all__ = ["AcceleratorDevice", "AcceleratorStats", "accel_selection"]


class AcceleratorStats:
    """Cumulative accelerator counters, updated once per executed task.

    Snapshots are read concurrently by metrics gauge callbacks, so
    updates and reads go through one (uncontended) lock.
    """

    def __init__(self) -> None:
        self._lock = make_lock("gpu.accelerator.AcceleratorStats._lock")
        self.tasks = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.transfer_seconds_measured = 0.0
        self.transfer_seconds_modeled = 0.0
        self.kernel_seconds = 0.0

    def record(
        self,
        bytes_in: int,
        bytes_out: int,
        measured: float,
        modeled: float,
        kernel: float,
    ) -> None:
        """Fold one task's transfer/kernel accounting into the totals."""
        with self._lock:
            self.tasks += 1
            self.bytes_in += bytes_in
            self.bytes_out += bytes_out
            self.transfer_seconds_measured += measured
            self.transfer_seconds_modeled += modeled
            self.kernel_seconds += kernel

    def snapshot(self) -> "dict[str, float]":
        """Point-in-time copy of every counter (for metrics and tests)."""
        with self._lock:
            return {
                "tasks": float(self.tasks),
                "bytes_in": float(self.bytes_in),
                "bytes_out": float(self.bytes_out),
                "transfer_seconds_measured": self.transfer_seconds_measured,
                "transfer_seconds_modeled": self.transfer_seconds_modeled,
                "kernel_seconds": self.kernel_seconds,
            }


def accel_selection(operator: Selection, inputs: "list[StreamSlice]") -> BatchResult:
    """Scan-compacted selection through the jitted compaction primitive.

    Algorithmically the simulated GPGPU kernel (all predicate lanes
    evaluated, survivors compacted by prefix sum), with the compaction
    going through :func:`repro.gpu.jit.compact_mask` so numba compiles
    the inner loop where available.  Both compaction paths are exact,
    so the output is bitwise identical to the CPU operator's.
    """
    slice_ = inputs[0]
    batch = slice_.batch
    mask = operator.predicate.evaluate(batch)  # all lanes, no short-circuit
    survivors = jit.compact_mask(mask)
    out = batch.take(survivors)
    selectivity = float(mask.mean()) if len(batch) else 0.0
    return BatchResult(complete=out, stats={"selectivity": selectivity})


class AcceleratorDevice:
    """Executable accelerator occupying the engine's GPGPU worker slot."""

    def __init__(
        self,
        device: GpuDeviceSpec = DEFAULT_GPU,
        pcie: PcieBus = DEFAULT_PCIE,
        throttle_seconds: float = 0.0,
    ) -> None:
        if throttle_seconds < 0:
            raise ValueError("throttle_seconds must be non-negative")
        self.device = device
        self.pcie = pcie
        self.throttle_seconds = throttle_seconds
        self.stats = AcceleratorStats()

    @property
    def jit_enabled(self) -> bool:
        """Whether the numba-compiled kernel path is live on this host."""
        return jit.HAVE_NUMBA

    # -- per-task path ------------------------------------------------------

    def _stage_in(self, inputs: "list[StreamSlice]") -> "tuple[list[StreamSlice], int]":
        """Movein: copy every input batch into device-side storage."""
        staged = []
        bytes_in = 0
        for slice_ in inputs:
            batch = slice_.batch
            bytes_in += batch.size_bytes
            device_batch = TupleBatch(batch.schema, np.copy(batch.data))
            staged.append(StreamSlice(device_batch, slice_.windows, slice_.global_start))
        return staged, bytes_in

    def _kernel(self, operator: Operator, inputs: "list[StreamSlice]") -> BatchResult:
        """Dispatch one task to its batch kernel (shared impl otherwise)."""
        if isinstance(operator, Selection):
            return accel_selection(operator, inputs)
        if isinstance(operator, ThetaJoin):
            return gpu_join(operator, inputs)
        # Aggregation/GROUP-BY/projection: the shared vectorised
        # implementation — float reduction order is never changed, which
        # is what keeps outputs bitwise identical across backends.
        return operator.process_batch(inputs)

    def execute(self, operator: Operator, inputs: "list[StreamSlice]") -> BatchResult:
        """Run one query task: movein → kernel → moveout, with accounting."""
        t0 = time.perf_counter()
        staged, bytes_in = self._stage_in(inputs)
        movein_measured = time.perf_counter() - t0

        k0 = time.perf_counter()
        result = self._kernel(operator, staged)
        kernel_seconds = time.perf_counter() - k0

        m0 = time.perf_counter()
        bytes_out = 0
        if result.complete is not None:
            # Moveout: the complete rows leave device storage by copy.
            bytes_out = result.complete.size_bytes
            result.complete = TupleBatch(
                result.complete.schema, np.copy(result.complete.data)
            )
        moveout_measured = time.perf_counter() - m0

        modeled = self.pcie.transfer_seconds(bytes_in) + self.pcie.transfer_seconds(
            bytes_out
        )
        self.stats.record(
            bytes_in,
            bytes_out,
            movein_measured + moveout_measured,
            modeled,
            kernel_seconds,
        )
        if self.throttle_seconds > 0:
            # Deliberate skew knob: makes the device observably slow so
            # HLS feedback tests can assert migration back to the CPU.
            time.sleep(self.throttle_seconds)
        return result
