"""SIMD-style GPGPU operator kernels (§5.4).

Each streaming operator has a GPGPU implementation that follows the
paper's OpenCL kernels algorithmically:

* **selection** — every atomic predicate is evaluated for every tuple
  (SIMD lanes do not short-circuit); survivors are compacted to
  contiguous output with a Blelloch prefix-sum over the selection vector;
* **aggregation** — one work group per window fragment; threads reduce
  pairs of tuples, forming a reduction tree (:func:`reduction_tree`);
* **GROUP-BY** — per-fragment open-addressing hash table with the same
  hash function as the CPU path (:mod:`repro.gpu.hashtable`); the batch
  path uses the vectorised compacted-table equivalent, and the table
  object itself is exercised by unit tests for equivalence;
* **join** — the two-step count-then-compact technique borrowed from
  in-memory column stores [32]: match counts per tuple, a scan to obtain
  write offsets, then compaction.

Kernels return the exact same :class:`~repro.operators.base.BatchResult`
as the CPU implementations (property-tested); only the *cost* charged by
the GPGPU model differs.  Window-result assembly always runs on a CPU
worker thread, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..operators.aggregation import Aggregation
from ..operators.base import BatchResult, Operator, StreamSlice
from ..operators.groupby import GroupedAggregation
from ..operators.join import ThetaJoin
from ..operators.selection import Selection
from .prefix_sum import blelloch_scan, compact_indices


def reduction_tree(values: np.ndarray, combine: str = "sum") -> float:
    """Pairwise tree reduction, as GPGPU work-group threads perform it.

    Each level halves the live lane count: thread *i* combines lanes
    ``2i`` and ``2i+1``.  Produces bitwise-identical results to the CPU
    for sum over floats only up to reordering — tests use tolerances.
    """
    ops = {"sum": np.add, "min": np.minimum, "max": np.maximum}
    if combine not in ops:
        raise ValueError(f"unsupported reduction {combine!r}")
    lanes = np.asarray(values, dtype=np.float64).copy()
    if len(lanes) == 0:
        return {"sum": 0.0, "min": np.inf, "max": -np.inf}[combine]
    op = ops[combine]
    while len(lanes) > 1:
        if len(lanes) % 2:
            lanes = np.concatenate([lanes, lanes[-1:]]) if combine != "sum" else (
                np.concatenate([lanes, [0.0]])
            )
        lanes = op(lanes[0::2], lanes[1::2])
    return float(lanes[0])


def gpu_selection(operator: Selection, inputs: "list[StreamSlice]") -> BatchResult:
    """Scan-compacted selection kernel."""
    slice_ = inputs[0]
    batch = slice_.batch
    mask = operator.predicate.evaluate(batch)  # all lanes, no short-circuit
    survivors = compact_indices(mask)
    out = batch.take(survivors)
    selectivity = float(mask.mean()) if len(batch) else 0.0
    return BatchResult(complete=out, stats={"selectivity": selectivity})


def gpu_join(operator: ThetaJoin, inputs: "list[StreamSlice]") -> BatchResult:
    """Count-then-compact join: delegates pair enumeration to the same
    window-fragment bookkeeping as the CPU path, but resolves each window
    pair with the two-step technique."""
    def count_compact(left, right):
        nl, nr = len(left), len(right)
        if nl == 0 or nr == 0:
            return operator.join_pairs(left, right)
        li = np.repeat(np.arange(nl), nr)
        ri = np.tile(np.arange(nr), nl)
        pairs = operator._combine(left.take(li), right.take(ri))
        mask = operator.predicate.evaluate(pairs)
        # Step 1: per-left-tuple match counts; step 2: scan for offsets.
        counts = mask.reshape(nl, nr).sum(axis=1)
        offsets = blelloch_scan(counts)
        total = int(offsets[-1] + counts[-1])
        write = np.empty(total, dtype=np.int64)
        write[blelloch_scan(mask.astype(np.int64))[mask]] = np.nonzero(mask)[0]
        return pairs.take(write)

    # Per-call override — the operator instance is shared across worker
    # threads in the threaded backend, so it must never be mutated here.
    return operator.process_batch(inputs, pair_fn=count_compact)


def execute_on_gpu(operator: Operator, inputs: "list[StreamSlice]") -> BatchResult:
    """Run a query task's batch operator function through the GPGPU path.

    Operators without a specialised kernel (projection's arithmetic map is
    identical on both processors; GROUP-BY's compacted table is the
    vectorised equivalent of :class:`~repro.gpu.hashtable.OpenAddressingTable`)
    fall back to the shared vectorised implementation — the *results* are
    defined to be processor-independent, and tests enforce it.
    """
    if isinstance(operator, Selection):
        return gpu_selection(operator, inputs)
    if isinstance(operator, ThetaJoin):
        return gpu_join(operator, inputs)
    if isinstance(operator, (Aggregation, GroupedAggregation)):
        return operator.process_batch(inputs)
    return operator.process_batch(inputs)
