"""GPGPU substrate: simulated device models + the executable accelerator."""

from .device import DEFAULT_GPU, GpuDeviceSpec
from .pcie import DEFAULT_PCIE, PcieBus
from .pipeline import STAGES, MovementPipeline, StageTiming
from .prefix_sum import blelloch_scan, compact_indices
from .hashtable import OpenAddressingTable
from .kernels import execute_on_gpu, gpu_join, gpu_selection, reduction_tree
from .jit import HAVE_NUMBA, compact_mask, exclusive_scan
from .accelerator import AcceleratorDevice, AcceleratorStats, accel_selection

__all__ = [
    "AcceleratorDevice",
    "AcceleratorStats",
    "accel_selection",
    "HAVE_NUMBA",
    "compact_mask",
    "exclusive_scan",
    "GpuDeviceSpec",
    "DEFAULT_GPU",
    "PcieBus",
    "DEFAULT_PCIE",
    "MovementPipeline",
    "StageTiming",
    "STAGES",
    "blelloch_scan",
    "compact_indices",
    "OpenAddressingTable",
    "execute_on_gpu",
    "gpu_selection",
    "gpu_join",
    "reduction_tree",
]
