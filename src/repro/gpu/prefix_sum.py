"""Work-efficient Blelloch prefix sum (§5.4, [14]).

SABER's GPGPU selection writes survivors to contiguous memory using a
scan: the binary selection vector is prefix-summed to obtain each
survivor's output address.  We implement the classic two-phase
(up-sweep / down-sweep) Blelloch scan the way a GPGPU would execute it —
level by level, each level a vectorised (SIMD-like) operation — and use it
for kernel compaction.  ``np.cumsum`` would give identical results; the
explicit algorithm exists so the kernel path mirrors the paper (and is
property-tested against ``cumsum``).
"""

from __future__ import annotations

import numpy as np


def blelloch_scan(values: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum via up-sweep/down-sweep.

    Returns an array of the same length where ``out[i] = sum(values[:i])``.
    """
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    # Pad to the next power of two, as a GPGPU work group would.
    size = 1 << (int(n - 1).bit_length() if n > 1 else 0)
    tree = np.zeros(size, dtype=np.int64)
    tree[:n] = values
    # Up-sweep: build partial sums level by level (each level is one
    # data-parallel step over stride-separated lanes).
    stride = 1
    while stride < size:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        tree[idx] += tree[idx - stride]
        stride *= 2
    # Down-sweep: push prefixes back down.
    tree[size - 1] = 0
    stride = size // 2
    while stride >= 1:
        idx = np.arange(2 * stride - 1, size, 2 * stride)
        left = tree[idx - stride].copy()
        tree[idx - stride] = tree[idx]
        tree[idx] += left
        stride //= 2
    return tree[:n]


def compact_indices(mask: np.ndarray) -> np.ndarray:
    """Output addresses of selected lanes (scan-based compaction).

    Given a boolean selection vector, returns the indices of the selected
    elements, computed via :func:`blelloch_scan` exactly as the GPGPU
    kernel derives contiguous write addresses.
    """
    mask = np.asarray(mask, dtype=bool)
    addresses = blelloch_scan(mask.astype(np.int64))
    total = int(addresses[-1]) + int(mask[-1]) if len(mask) else 0
    out = np.empty(total, dtype=np.int64)
    out[addresses[mask]] = np.nonzero(mask)[0]
    return out
