"""Five-stage pipelined stream data movement (§5.2, Fig. 6).

Executing a query task on the GPGPU involves five operations::

    copyin  — Java heap  -> pinned host memory   (dedicated CPU thread)
    movein  — pinned host -> GPGPU memory (DMA)  (dedicated GPGPU thread)
    execute — kernel execution                   (remaining GPGPU threads)
    moveout — GPGPU memory -> pinned host (DMA)  (dedicated GPGPU thread)
    copyout — pinned host -> Java heap           (dedicated CPU thread)

SABER interleaves these across consecutive tasks.  The model enforces the
two dependency families of Fig. 6:

* **data dependencies** — a task's stage *s* starts only after its own
  stage *s-1* finished;
* **thread dependencies** — each stage is executed by one dedicated
  thread, so stage *s* of task *i* also waits for stage *s* of task
  *i-1*;

plus the buffer ring: with *k* pinned-buffer slots, task *i*'s copyin
waits until task *i-k*'s copyout released its slot (the paper uses four
buffers: "task 5's copyout operation returns the results of task 1").

In steady state, a task therefore departs every ``max(stage durations)``
seconds while each individual task observes the full ``sum(stages)``
latency — the throughput/latency split the engine's GPGPU worker model
relies on.  Disabling pipelining (``pipelined=False``) serialises all five
stages, the ablation case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SimulationError

STAGES = ("copyin", "movein", "execute", "moveout", "copyout")


@dataclass
class StageTiming:
    """Computed schedule of one task through the pipeline."""

    task_id: int
    start: "dict[str, float]"
    finish: "dict[str, float]"

    @property
    def completion_time(self) -> float:
        """Finish time of the last pipeline stage for this task."""
        return self.finish[STAGES[-1]]


@dataclass
class MovementPipeline:
    """Schedules tasks through the five data-movement stages."""

    buffer_slots: int = 4
    pipelined: bool = True
    _stage_free: "dict[str, float]" = field(default_factory=dict)
    _slot_release: "list[float]" = field(default_factory=list)
    _last_completion: float = 0.0
    _task_counter: int = 0

    def __post_init__(self) -> None:
        if self.buffer_slots <= 0:
            raise SimulationError("pipeline needs at least one buffer slot")
        self._stage_free = {stage: 0.0 for stage in STAGES}
        self._slot_release = [0.0] * self.buffer_slots

    def schedule(self, arrival: float, durations: "dict[str, float]") -> StageTiming:
        """Run one task through the pipeline; returns its stage schedule.

        ``durations`` maps each of the five stage names to its duration.
        """
        missing = [s for s in STAGES if s not in durations]
        if missing:
            raise SimulationError(f"missing pipeline stage durations: {missing}")
        task_id = self._task_counter
        self._task_counter += 1

        start: dict[str, float] = {}
        finish: dict[str, float] = {}
        if self.pipelined:
            slot = task_id % self.buffer_slots
            ready = max(arrival, self._slot_release[slot])
            previous_finish = ready
            for stage in STAGES:
                begin = max(previous_finish, self._stage_free[stage])
                end = begin + durations[stage]
                start[stage] = begin
                finish[stage] = end
                self._stage_free[stage] = end
                previous_finish = end
            self._slot_release[slot] = finish[STAGES[-1]]
        else:
            # Ablation: all five operations execute back-to-back with no
            # overlap across tasks (single buffer, single thread).
            begin = max(arrival, self._last_completion)
            for stage in STAGES:
                start[stage] = begin
                begin += durations[stage]
                finish[stage] = begin
            self._last_completion = begin
        timing = StageTiming(task_id=task_id, start=start, finish=finish)
        self._last_completion = max(self._last_completion, timing.completion_time)
        return timing

    def next_accept_time(self) -> float:
        """Earliest time the pipeline can begin another task's copyin."""
        if not self.pipelined:
            return self._last_completion
        slot = self._task_counter % self.buffer_slots
        return max(self._stage_free[STAGES[0]], self._slot_release[slot])
