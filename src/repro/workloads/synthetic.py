"""Synthetic workload (Table 1, "Syn").

32-byte tuples: a 64-bit timestamp plus six 32-bit attributes drawn from
a uniform distribution (the first attribute a float for aggregation and
projection queries, the rest integers).  Query generators produce the
paper's parameterised operators:

* ``proj_query(m)``        — PROJ_m: project m attributes (with optional
  extra arithmetic expressions per attribute, PROJ6*'s 100);
* ``select_query(n)``      — SELECT_n: conjunction of n predicates;
* ``agg_query(f)``         — AGG_f for f ∈ {avg, sum, ...};
* ``groupby_query(o)``     — AGG with GROUP-BY over o groups;
* ``join_query(r)``        — JOIN_r: θ-join with r predicates.
"""

from __future__ import annotations

import numpy as np

from ..core.query import Query
from ..io.base import GeneratorSource
from ..operators.aggregate_functions import AggregateSpec
from ..operators.aggregation import Aggregation
from ..operators.compose import FilteredWindows, ProjectedWindows
from ..operators.groupby import GroupedAggregation
from ..operators.join import ThetaJoin
from ..operators.projection import Projection
from ..operators.selection import Selection
from ..relational.expressions import Expression, Predicate, col, conjunction
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..windows.definition import WindowDefinition

#: 8-byte timestamp + float + 5 ints = 32 bytes, the paper's tuple layout.
SYNTHETIC_SCHEMA = Schema.with_timestamp(
    "a1:float, a2:int, a3:int, a4:int, a5:int, a6:int", name="Syn"
)

TUPLE_SIZE = SYNTHETIC_SCHEMA.tuple_size  # 32 bytes

#: integer attributes are uniform over [0, VALUE_RANGE).
VALUE_RANGE = 1 << 16


class SyntheticSource(GeneratorSource):
    """Uniform stream of 32-byte tuples (a connector-SPI source).

    ``tuples_per_second`` fixes the logical-time density: timestamps
    advance one unit per ``tuples_per_second`` tuples (used by time-based
    windows; count-based queries ignore it).  Unbounded by default;
    ``limit`` makes the stream finite (it ends with
    :class:`~repro.errors.EndOfStream` after that many tuples).
    """

    def __init__(
        self,
        schema: Schema = SYNTHETIC_SCHEMA,
        seed: int = 1,
        tuples_per_second: int = 1024,
        groups: int = 64,
        limit: "int | None" = None,
    ) -> None:
        super().__init__(schema, limit=limit)
        self._rng = np.random.default_rng(seed)
        self._position = 0
        self._tuples_per_second = tuples_per_second
        self._groups = groups

    def generate(self, count: int) -> TupleBatch:
        start = self._position
        self._position += count
        indices = np.arange(start, start + count, dtype=np.int64)
        columns = {"timestamp": indices // self._tuples_per_second}
        for attr in self.schema.attributes[1:]:
            if attr.type_name == "float":
                columns[attr.name] = self._rng.random(count, dtype=np.float32)
            else:
                high = self._groups if attr.name == "a2" else VALUE_RANGE
                columns[attr.name] = self._rng.integers(
                    0, high, size=count, dtype=np.int64
                ).astype(np.int32)
        return TupleBatch.from_columns(self.schema, **columns)


def _window(size_bytes: int, slide_bytes: int) -> WindowDefinition:
    """ω(size, slide) expressed in bytes, as the paper writes ω32KB,32KB."""
    return WindowDefinition.rows(
        max(1, size_bytes // TUPLE_SIZE), max(1, slide_bytes // TUPLE_SIZE)
    )


def _fragments_per_task(window: "WindowDefinition | None", tuples: int) -> float:
    """Expected window fragments in a task of ``tuples`` rows."""
    if window is None:
        return 0.0
    if window.is_count_based:
        return tuples / window.slide + window.size / window.slide
    return float(tuples)  # time-based density is source-specific


def _stateless_stat_model(
    window: "WindowDefinition | None",
    selectivity: float,
    output_tuple_size: int,
):
    """Analytic per-task statistics for projection/selection queries."""

    def model(tuples: int) -> "dict[str, float]":
        return {
            "selectivity": selectivity,
            "fragments": _fragments_per_task(window, tuples),
            "output_bytes": selectivity * tuples * output_tuple_size,
        }

    return model


def _aggregation_stat_model(
    window: WindowDefinition, output_row_size: int, groups: float = 1.0
):
    def model(tuples: int) -> "dict[str, float]":
        fragments = _fragments_per_task(window, tuples)
        return {
            "selectivity": 1.0,
            "fragments": fragments,
            "groups": groups,
            "output_bytes": fragments * groups * output_row_size,
        }

    return model


def _join_stat_model(window: WindowDefinition, selectivity: float, out_size: int):
    def model(tuples: int) -> "dict[str, float]":
        per_stream = tuples / 2.0
        windows = per_stream / window.slide
        pairs = windows * float(window.size) * float(window.size)
        return {
            "selectivity": selectivity,
            "fragments": windows,
            "pairs": pairs,
            "output_bytes": selectivity * pairs * out_size,
        }

    return model


def proj_query(
    m: int,
    window: "WindowDefinition | None" = None,
    expressions_per_attribute: int = 1,
    name: "str | None" = None,
) -> Query:
    """PROJ_m, optionally PROJ_m* with extra arithmetic per attribute."""
    if not 1 <= m <= 6:
        raise ValueError("PROJ_m supports 1..6 attributes")
    columns: list[tuple[str, Expression]] = [("timestamp", col("timestamp"))]
    attrs = ["a1", "a2", "a3", "a4", "a5", "a6"][:m]
    for attr in attrs:
        expr: Expression = col(attr)
        for k in range(expressions_per_attribute):
            expr = expr + (k + 1)
        columns.append((attr, expr))
    operator = Projection(
        SYNTHETIC_SCHEMA, columns, output_types={a: "float" for a in attrs}
    )
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=name or f"PROJ{m}",
        operator=operator,
        windows=[w],
        stat_model=_stateless_stat_model(w, 1.0, operator.output_schema.tuple_size),
    )


def select_query(
    n: int,
    window: "WindowDefinition | None" = None,
    pass_rate: float = 0.5,
    name: "str | None" = None,
) -> Query:
    """SELECT_n: a conjunction of n predicates.

    The first n-1 conjuncts are always true (value < VALUE_RANGE), the
    last passes a ``pass_rate`` fraction — so a short-circuiting CPU
    still evaluates all n atoms (the Fig. 10a regime) while the output
    selectivity stays controllable.
    """
    if n < 1:
        raise ValueError("SELECT_n needs n >= 1")
    attrs = ["a3", "a4", "a5", "a6"]
    predicates: list[Predicate] = []
    for k in range(n - 1):
        predicates.append(col(attrs[k % len(attrs)]) < VALUE_RANGE + k)
    predicates.append(col("a2") < VALUE_RANGE)  # calibrated by source groups
    predicate = conjunction(predicates)
    operator = Selection(
        SYNTHETIC_SCHEMA,
        predicate,
        cpu_evals_fn=lambda __sel, n=n: float(n),
    )
    # pass_rate is realised by the source: a2 < groups*pass_rate would be
    # data-dependent; the final conjunct above passes all tuples, so the
    # measured selectivity is ~1 unless callers tighten it.
    if pass_rate < 1.0:
        threshold = int(VALUE_RANGE * pass_rate)
        predicates[-1] = col("a5") < threshold
        predicate = conjunction(predicates)
        operator = Selection(
            SYNTHETIC_SCHEMA,
            predicate,
            cpu_evals_fn=lambda __sel, n=n: float(n),
        )
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=name or f"SELECT{n}",
        operator=operator,
        windows=[w],
        stat_model=_stateless_stat_model(w, pass_rate, TUPLE_SIZE),
    )


def agg_query(
    functions: "str | list[str]" = "avg",
    window: "WindowDefinition | None" = None,
    name: "str | None" = None,
) -> Query:
    """AGG_f over the float attribute (AGG* passes all five functions)."""
    if isinstance(functions, str):
        functions = [functions]
    specs = [
        AggregateSpec(fn, None if fn == "count" else "a1") for fn in functions
    ]
    operator = Aggregation(SYNTHETIC_SCHEMA, specs)
    label = name or f"AGG{'_'.join(functions)}"
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=label,
        operator=operator,
        windows=[w],
        stat_model=_aggregation_stat_model(w, operator.output_schema.tuple_size),
    )


def groupby_query(
    groups: int,
    functions: "str | list[str]" = "cnt",
    window: "WindowDefinition | None" = None,
    name: "str | None" = None,
) -> Query:
    """GROUP-BY_o: grouped aggregation over ``groups`` distinct keys.

    The source bounds attribute ``a2`` to the group count, so ``groups``
    both parameterises the query label and the actual key cardinality.
    """
    if isinstance(functions, str):
        functions = [functions]
    mapping = {"cnt": "count", "count": "count", "sum": "sum", "avg": "avg"}
    specs = [
        AggregateSpec(mapping.get(fn, fn), None if mapping.get(fn, fn) == "count" else "a1")
        for fn in functions
    ]
    operator = GroupedAggregation(SYNTHETIC_SCHEMA, ["a2"], specs)
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=name or f"GROUP-BY{groups}",
        operator=operator,
        windows=[w],
        stat_model=_aggregation_stat_model(
            w, operator.output_schema.tuple_size, groups=float(groups)
        ),
    )


def _pass_rate_predicate(pass_rate: float) -> Predicate:
    """``a5 < threshold``: passes a ``pass_rate`` fraction of tuples."""
    return col("a5") < int(VALUE_RANGE * pass_rate)


def select_project_query(
    m: int,
    pass_rate: float = 0.5,
    window: "WindowDefinition | None" = None,
    name: "str | None" = None,
) -> Query:
    """σ∘π: WHERE plus PROJ_m in one operator chain.

    Compiles to ``FilteredWindows(σ, Projection)`` — the two-stage chain
    the query-fusion layer collapses into one single-pass kernel.  The
    stateless-heavy shape of Table 1's projection/selection mixes.
    """
    if not 1 <= m <= 6:
        raise ValueError("PROJ_m supports 1..6 attributes")
    attrs = ["a1", "a2", "a3", "a4", "a5", "a6"][:m]
    columns: "list[tuple[str, Expression]]" = [("timestamp", col("timestamp"))]
    columns += [(a, col(a)) for a in attrs]
    projection = Projection(
        SYNTHETIC_SCHEMA, columns, output_types={a: "float" for a in attrs}
    )
    operator = FilteredWindows(_pass_rate_predicate(pass_rate), projection)
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=name or f"SEL-PROJ{m}",
        operator=operator,
        windows=[w],
        stat_model=_stateless_stat_model(
            w, pass_rate, projection.output_schema.tuple_size
        ),
    )


def spa_query(
    functions: "str | list[str]" = "sum",
    pass_rate: float = 0.5,
    expressions_per_attribute: int = 2,
    window: "WindowDefinition | None" = None,
    name: "str | None" = None,
) -> Query:
    """σ∘π∘α: selection, projection and windowed aggregation chained.

    Survivors of the WHERE are projected through arithmetic expressions
    and the aggregates consume the *computed* column — the full
    three-stage chain (``FilteredWindows(σ, ProjectedWindows(π, α))``)
    whose two intermediate materialisations the fusion layer removes.
    """
    if isinstance(functions, str):
        functions = [functions]
    expr: Expression = col("a1")
    for k in range(expressions_per_attribute):
        expr = expr * 2.0 + (k + 1)
    projection = Projection(
        SYNTHETIC_SCHEMA,
        [("timestamp", col("timestamp")), ("scaled", expr)],
        output_types={"scaled": "float"},
    )
    specs = [
        AggregateSpec(fn, None if fn == "count" else "scaled") for fn in functions
    ]
    aggregation = Aggregation(projection.output_schema, specs)
    operator = FilteredWindows(
        _pass_rate_predicate(pass_rate), ProjectedWindows(projection, aggregation)
    )
    w = window or _window(32 << 10, 32 << 10)
    return Query(
        name=name or f"SPA{'_'.join(functions)}",
        operator=operator,
        windows=[w],
        stat_model=_aggregation_stat_model(w, aggregation.output_schema.tuple_size),
    )


def join_query(
    r: int,
    window: "WindowDefinition | None" = None,
    name: "str | None" = None,
) -> Query:
    """JOIN_r: θ-join of two synthetic streams with r predicates."""
    if r < 1:
        raise ValueError("JOIN_r needs r >= 1")
    left = SYNTHETIC_SCHEMA.rename("SynL")
    right = SYNTHETIC_SCHEMA.rename("SynR")
    attrs = ["a2", "a3", "a4", "a5", "a6"]
    predicates: list[Predicate] = []
    # First predicate selective (~1% of pairs match, like the paper's §6.2
    # join), the rest always true so the pair-evaluation cost scales with
    # r as in Fig. 10b.
    predicates.append((col("a3") % 100).eq(col("r_a3") % 100))
    for k in range(r - 1):
        attr = attrs[k % len(attrs)]
        predicates.append(col(attr) < VALUE_RANGE + k)
    operator = ThetaJoin(left, right, conjunction(predicates))
    w = window or _window(4 << 10, 4 << 10)
    return Query(
        name=name or f"JOIN{r}",
        operator=operator,
        windows=[w, w],
        stat_model=_join_stat_model(w, 0.01, operator.output_schema.tuple_size),
    )


def window_bytes(size_bytes: int, slide_bytes: int) -> WindowDefinition:
    """Public alias of the byte-denominated window helper."""
    return _window(size_bytes, slide_bytes)
