"""Registry of the Table 1 benchmark queries with their sources.

Each entry builds a fresh (query, sources) pair so benchmark code can run
any application query by name::

    from repro.workloads.queries import build
    query, sources = build("CM1", seed=7)
"""

from __future__ import annotations

from ..core.query import Query
from . import cluster, linearroad, smartgrid


def build(
    name: str, seed: int = 1, tuples_per_second: "int | None" = None
) -> "tuple[Query, list]":
    """Build a named application query and its (fresh) sources.

    ``tuples_per_second`` overrides the source's logical-time density —
    smoke runs pass a low rate so that long time windows (e.g. SG1's
    3,600 s range) close within a small number of tasks.
    """
    rate = {} if tuples_per_second is None else {
        "tuples_per_second": tuples_per_second
    }
    if name == "CM1":
        return cluster.cm1_query(), [
            cluster.ClusterMonitoringSource(seed=seed, **rate)
        ]
    if name == "CM2":
        return cluster.cm2_query(), [
            cluster.ClusterMonitoringSource(seed=seed, **rate)
        ]
    if name == "SG1":
        return smartgrid.sg1_query(), [smartgrid.SmartGridSource(seed=seed, **rate)]
    if name == "SG2":
        return smartgrid.sg2_query(), [smartgrid.SmartGridSource(seed=seed, **rate)]
    if name == "SG3":
        derived = smartgrid.DerivedLoadSource(seed=seed)
        return smartgrid.sg3_query(), [
            derived.stream("local"),
            derived.stream("global"),
        ]
    if name == "LRB1":
        return linearroad.lrb1_query(), [linearroad.LinearRoadSource(seed=seed, **rate)]
    if name == "LRB2":
        return linearroad.lrb2_query(), [linearroad.LinearRoadSource(seed=seed, **rate)]
    if name == "LRB3":
        return linearroad.lrb3_query(), [linearroad.LinearRoadSource(seed=seed, **rate)]
    if name == "LRB4":
        return linearroad.lrb4_query(), [linearroad.LinearRoadSource(seed=seed, **rate)]
    raise KeyError(f"unknown application query {name!r}")


#: per-query source rates that let time windows close within a short
#: smoke run (Table 1 benchmark): roughly (window span × rate) tuples must
#: fit into the run's data volume.
SMOKE_RATES = {
    "CM1": 64, "CM2": 64,
    "SG1": 4, "SG2": 4, "SG3": None,
    "LRB1": None, "LRB2": 128, "LRB3": 12, "LRB4": 128,
}


APPLICATION_QUERIES = (
    "CM1", "CM2", "SG1", "SG2", "SG3", "LRB1", "LRB2", "LRB3", "LRB4",
)
