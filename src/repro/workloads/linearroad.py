"""Linear Road Benchmark workload (LRB, Table 1 / Appendix A.3, [8]).

Synthetic generator of position events: vehicles drive lanes of a toll
highway network, reporting (speed, highway, lane, direction, position)
every logical second.  Speeds dip on congested segments so that LRB3's
``having avgSpeed < 40`` predicate selects a meaningful subset.

Queries:

* LRB1 — segment projection over an unbounded window;
* LRB2 — distinct vehicle/segment entries over ω(30, 1) (the paper pairs
  a 30 s window with a partition-by-vehicle rows-1 window; we reproduce
  the per-window distinct-vehicle semantics with the distinct projection,
  documented in DESIGN.md);
* LRB3 — congested segments: per-segment average speed with HAVING;
* LRB4 — per-segment vehicle counts (the inner GROUP-BY of the nested
  Appendix A.3 query; the outer count is a cheap post-aggregation).
"""

from __future__ import annotations

import numpy as np

from ..api import Stream, agg
from ..core.query import Query
from ..io.base import GeneratorSource
from ..relational.expressions import col
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch

#: PosSpeedStr schema (Appendix A.3), 32 bytes.
POS_SPEED_SCHEMA = Schema.with_timestamp(
    "vehicle:int, speed:float, highway:int, lane:int, direction:int, position:int",
    name="PosSpeedStr",
)

FEET_PER_SEGMENT = 5280


class LinearRoadSource(GeneratorSource):
    """Synthetic Linear Road position-event stream (``limit`` = finite)."""

    def __init__(
        self,
        seed: int = 1,
        tuples_per_second: int = 4096,
        vehicles: int = 4096,
        highways: int = 4,
        segments: int = 100,
        congested_fraction: float = 0.2,
        limit: "int | None" = None,
    ) -> None:
        super().__init__(POS_SPEED_SCHEMA, limit=limit)
        self._rng = np.random.default_rng(seed)
        self._position = 0
        self._tuples_per_second = tuples_per_second
        self._vehicles = vehicles
        self._highways = highways
        self._segments = segments
        congested = self._rng.random(segments) < congested_fraction
        self._segment_speed = np.where(
            congested,
            self._rng.uniform(15.0, 38.0, segments),
            self._rng.uniform(45.0, 70.0, segments),
        )

    def generate(self, count: int) -> TupleBatch:
        rng = self._rng
        indices = np.arange(self._position, self._position + count, dtype=np.int64)
        self._position += count
        vehicle = rng.integers(0, self._vehicles, count).astype(np.int32)
        segment = rng.integers(0, self._segments, count)
        position = (segment * FEET_PER_SEGMENT + rng.integers(
            0, FEET_PER_SEGMENT, count
        )).astype(np.int32)
        speed = (
            self._segment_speed[segment] + rng.normal(0.0, 4.0, count)
        ).astype(np.float32)
        return TupleBatch.from_columns(
            self.schema,
            timestamp=indices // self._tuples_per_second,
            vehicle=vehicle,
            speed=speed,
            highway=rng.integers(0, self._highways, count).astype(np.int32),
            lane=rng.integers(0, 4, count).astype(np.int32),
            direction=rng.integers(0, 2, count).astype(np.int32),
            position=position,
        )


def lrb1_query() -> Query:
    """LRB1: segment projection over an unbounded window.

    ``select timestamp, vehicle, speed, highway, lane, direction,
    (position / 5280) as segment from SegSpeedStr [range unbounded]``
    """
    return (
        Stream.named("SegSpeedStr", POS_SPEED_SCHEMA)
        .unbounded()
        .select(
            "timestamp", "vehicle", "speed", "highway", "lane", "direction",
            ("segment", col("position") / FEET_PER_SEGMENT, "int"),
        )
        .build("LRB1")
    )


def lrb2_query() -> Query:
    """LRB2: distinct vehicle/segment entries in the last 30 seconds."""
    return (
        Stream.named("SegSpeedStr", POS_SPEED_SCHEMA)
        .window(time=30, slide=1)
        .select(
            "vehicle", "highway", "lane", "direction",
            ("segment", col("position") / FEET_PER_SEGMENT),
        )
        .distinct()
        .build("LRB2")
    )


def lrb3_query() -> Query:
    """LRB3: congested segments (avg speed < 40) over ω(300, 1).

    ``select ..., avg(speed) from SegSpeedStr [range 300 slide 1]
    group by highway, direction, segment having avgSpeed < 40.0``

    ``segment`` is the derived key ``position / 5280`` (LRB1's
    projection), expressed as a derived GROUP-BY column.
    """
    return (
        Stream.named("SegSpeedStr", POS_SPEED_SCHEMA)
        .window(time=300, slide=1)
        .group_by(
            "highway", "direction", agg.avg("speed", "avgSpeed"),
            segment=(col("position") / FEET_PER_SEGMENT, "int"),
        )
        .having(col("avgSpeed") < 40.0)
        .build("LRB3")
    )


def lrb4_query() -> Query:
    """LRB4: per-segment per-vehicle event counts over ω(30, 1).

    The inner query of Appendix A.3's nested pair — group by
    (highway, direction, vehicle) with count(*); the outer distinct-
    vehicle count per segment is a cheap post-aggregation over this
    query's output stream.
    """
    return (
        Stream.named("SegSpeedStr", POS_SPEED_SCHEMA)
        .window(time=30, slide=1)
        .group_by("highway", "direction", "vehicle", agg.count(alias="events"))
        .build("LRB4")
    )
