"""Evaluation workloads: synthetic, cluster monitoring, smart grid, LRB."""

from .synthetic import (
    SYNTHETIC_SCHEMA,
    TUPLE_SIZE,
    SyntheticSource,
    agg_query,
    groupby_query,
    join_query,
    proj_query,
    select_project_query,
    select_query,
    spa_query,
    window_bytes,
)
from .cluster import (
    TASK_EVENTS_SCHEMA,
    ClusterMonitoringSource,
    cm1_query,
    cm2_query,
    surge_select_query,
)
from .smartgrid import (
    SMART_GRID_SCHEMA,
    DerivedLoadSource,
    SmartGridSource,
    sg1_query,
    sg2_query,
    sg3_query,
)
from .linearroad import (
    POS_SPEED_SCHEMA,
    LinearRoadSource,
    lrb1_query,
    lrb2_query,
    lrb3_query,
    lrb4_query,
)
from .queries import APPLICATION_QUERIES, build

__all__ = [
    "SYNTHETIC_SCHEMA",
    "TUPLE_SIZE",
    "SyntheticSource",
    "proj_query",
    "select_query",
    "select_project_query",
    "spa_query",
    "agg_query",
    "groupby_query",
    "join_query",
    "window_bytes",
    "TASK_EVENTS_SCHEMA",
    "ClusterMonitoringSource",
    "cm1_query",
    "cm2_query",
    "surge_select_query",
    "SMART_GRID_SCHEMA",
    "SmartGridSource",
    "DerivedLoadSource",
    "sg1_query",
    "sg2_query",
    "sg3_query",
    "POS_SPEED_SCHEMA",
    "LinearRoadSource",
    "lrb1_query",
    "lrb2_query",
    "lrb3_query",
    "lrb4_query",
    "APPLICATION_QUERIES",
    "build",
]
