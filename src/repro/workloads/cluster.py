"""Compute-cluster monitoring workload (CM, Table 1 / Appendix A.1).

The paper replays a trace of task events from an 11,000-machine Google
compute cluster [53].  The trace itself is not redistributable, so we
generate a synthetic stream with the same schema and the statistical
features the CM queries exercise:

* ``eventType`` — categorical; type 1 is "task submitted" (CM2's filter)
  and type 2 is "task failed" (the Fig. 16 surge predicate);
* ``category`` — small cardinality (CM1's GROUP-BY);
* ``jobId``    — large cardinality (CM2's GROUP-BY);
* a configurable **failure surge**: periods where the task-failure rate
  jumps, reproducing the selectivity dynamics of Fig. 16.
"""

from __future__ import annotations

import numpy as np

from ..api import Stream, agg
from ..core.query import Query
from ..io.base import GeneratorSource
from ..relational.expressions import col, conjunction, disjunction
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch

#: TaskEvents schema (Appendix A.1), 48 bytes per tuple.
TASK_EVENTS_SCHEMA = Schema.with_timestamp(
    "jobId:long, taskId:long, machineId:long, eventType:int, userId:int, "
    "category:int, priority:int, cpu:float, ram:float, disk:float, "
    "constraints:int",
    name="TaskEvents",
)

EVENT_SUBMIT = 1
EVENT_FAIL = 2
EVENT_FINISH = 3
EVENT_OTHER = 0


class ClusterMonitoringSource(GeneratorSource):
    """Synthetic Google-cluster-trace-like task-event stream.

    ``failure_surge`` optionally injects periods of elevated task-failure
    probability: a tuple ``(period_tuples, surge_fraction, surge_rate)``
    meaning every ``period_tuples`` tuples, the last ``surge_fraction``
    of the period emits failures at ``surge_rate`` instead of the base
    rate — the repeating surge the Fig. 16 trace contains.  ``limit``
    makes the stream finite (connector-SPI end-of-stream).
    """

    def __init__(
        self,
        seed: int = 1,
        tuples_per_second: int = 4096,
        categories: int = 12,
        jobs: int = 2048,
        base_failure_rate: float = 0.01,
        failure_surge: "tuple[int, float, float] | None" = None,
        limit: "int | None" = None,
    ) -> None:
        super().__init__(TASK_EVENTS_SCHEMA, limit=limit)
        self._rng = np.random.default_rng(seed)
        self._position = 0
        self._tuples_per_second = tuples_per_second
        self._categories = categories
        self._jobs = jobs
        self._base_failure_rate = base_failure_rate
        self._failure_surge = failure_surge

    def _failure_rates(self, indices: np.ndarray) -> np.ndarray:
        rates = np.full(len(indices), self._base_failure_rate)
        if self._failure_surge is not None:
            period, fraction, surge_rate = self._failure_surge
            phase = (indices % period) / period
            rates[phase >= 1.0 - fraction] = surge_rate
        return rates

    def generate(self, count: int) -> TupleBatch:
        rng = self._rng
        indices = np.arange(self._position, self._position + count, dtype=np.int64)
        self._position += count
        fail = rng.random(count) < self._failure_rates(indices)
        event_type = np.where(
            fail,
            EVENT_FAIL,
            rng.choice(
                [EVENT_SUBMIT, EVENT_FINISH, EVENT_OTHER],
                size=count,
                p=[0.4, 0.4, 0.2],
            ),
        ).astype(np.int32)
        return TupleBatch.from_columns(
            self.schema,
            timestamp=indices // self._tuples_per_second,
            jobId=rng.integers(0, self._jobs, count, dtype=np.int64),
            taskId=indices,
            machineId=rng.integers(0, 11_000, count, dtype=np.int64),
            eventType=event_type,
            userId=rng.integers(0, 512, count, dtype=np.int64).astype(np.int32),
            category=rng.integers(0, self._categories, count).astype(np.int32),
            priority=rng.integers(0, 12, count).astype(np.int32),
            cpu=rng.random(count, dtype=np.float32),
            ram=rng.random(count, dtype=np.float32),
            disk=rng.random(count, dtype=np.float32),
            constraints=np.zeros(count, dtype=np.int32),
        )


def cm1_query() -> Query:
    """CM1: total requested CPU per category, ω(60, 1) time window.

    ``select timestamp, category, sum(cpu) from TaskEvents
    [range 60 slide 1] group by category``
    """
    return (
        Stream.named("TaskEvents", TASK_EVENTS_SCHEMA)
        .window(time=60, slide=1)
        .group_by("category", agg.sum("cpu", "totalCpu"))
        .build("CM1")
    )


def cm2_query() -> Query:
    """CM2: average CPU of submitted tasks per job, ω(60, 1).

    ``select timestamp, jobId, avg(cpu) from TaskEvents
    [range 60 slide 1] where eventType == 1 group by jobId``
    """
    return (
        Stream.named("TaskEvents", TASK_EVENTS_SCHEMA)
        .window(time=60, slide=1)
        .where(col("eventType").eq(EVENT_SUBMIT))
        .group_by("jobId", agg.avg("cpu", "avgCpu"))
        .build("CM2")
    )


def surge_select_query(predicates: int = 500) -> Query:
    """The Fig. 16 query: SELECT with ``p1 and (p2 or ... or p_n)``.

    ``p1`` filters task-failure events; when it holds, a SIMD processor
    — and a short-circuiting CPU — must grind through the long OR chain,
    so per-tuple cost rises with the failure selectivity on the CPU while
    the GPGPU always pays the full chain.
    """
    p1 = col("eventType").eq(EVENT_FAIL)
    # The OR chain's early branches never hold, its final branch always
    # does: a selected failure event evaluates the entire chain, and the
    # measured query selectivity equals the failure rate.
    chain = disjunction(
        [col("priority") > 1_000_000 + k for k in range(predicates - 2)]
        + [col("priority") >= 0]
    )
    return (
        Stream.named("TaskEvents", TASK_EVENTS_SCHEMA)
        .window(rows=1024, slide=1024)
        .where(
            conjunction([p1, chain]),
            # CPU short-circuits: 1 atom always; the chain only for failures.
            cpu_evals_fn=lambda sel, n=predicates: 1.0 + sel * (n - 1),
        )
        .build(f"SELECT{predicates}")
    )
