"""Smart-grid anomaly detection workload (SG, Table 1 / Appendix A.2).

The paper uses the DEBS 2014 Grand Challenge smart-plug trace [34]; we
generate a synthetic equivalent: households of plugs across houses, each
plug reporting a load value with a diurnal-ish base signal, per-plug
offsets, noise, and occasional high-load anomalies (which SG3's join is
designed to surface).
"""

from __future__ import annotations

import numpy as np

from ..api import Stream, agg
from ..core.query import Query
from ..io.base import GeneratorSource
from ..relational.expressions import col
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch

#: SmartGridStr schema (Appendix A.2), padded to 32 bytes like the paper.
SMART_GRID_SCHEMA = Schema.with_timestamp(
    "value:float, property:int, plug:int, household:int, house:int, padding:int",
    name="SmartGridStr",
)

#: SG1 output: sliding global load average.
GLOBAL_LOAD_SCHEMA = Schema.with_timestamp(
    "globalAvgLoad:float", name="GlobalLoadStr"
)

#: SG2 output: sliding per-plug load average.
LOCAL_LOAD_SCHEMA = Schema.with_timestamp(
    "plug:int, household:int, house:int, localAvgLoad:float",
    name="LocalLoadStr",
)


class SmartGridSource(GeneratorSource):
    """Synthetic smart-meter reading stream (``limit`` makes it finite)."""

    def __init__(
        self,
        seed: int = 1,
        tuples_per_second: int = 2048,
        houses: int = 40,
        households_per_house: int = 4,
        plugs_per_household: int = 4,
        anomaly_rate: float = 0.02,
        limit: "int | None" = None,
    ) -> None:
        super().__init__(SMART_GRID_SCHEMA, limit=limit)
        self._rng = np.random.default_rng(seed)
        self._position = 0
        self._tuples_per_second = tuples_per_second
        self._houses = houses
        self._households = households_per_house
        self._plugs = plugs_per_household
        self._anomaly_rate = anomaly_rate

    def generate(self, count: int) -> TupleBatch:
        rng = self._rng
        indices = np.arange(self._position, self._position + count, dtype=np.int64)
        self._position += count
        timestamps = indices // self._tuples_per_second
        house = rng.integers(0, self._houses, count).astype(np.int32)
        household = rng.integers(0, self._households, count).astype(np.int32)
        plug = rng.integers(0, self._plugs, count).astype(np.int32)
        base = 50.0 + 20.0 * np.sin(2 * np.pi * (timestamps % 86_400) / 86_400.0)
        per_plug = 3.0 * plug + 1.5 * household
        noise = rng.normal(0.0, 2.0, count)
        anomaly = (rng.random(count) < self._anomaly_rate) * rng.uniform(
            50.0, 150.0, count
        )
        value = (base + per_plug + noise + anomaly).astype(np.float32)
        return TupleBatch.from_columns(
            self.schema,
            timestamp=timestamps,
            value=value,
            property=np.ones(count, dtype=np.int32),
            plug=plug,
            household=household,
            house=house,
            padding=np.zeros(count, dtype=np.int32),
        )


class DerivedLoadSource:
    """Joint generator of SG1/SG2-shaped derived streams.

    SG3 joins the *outputs* of SG1 and SG2.  In the paper those arrive as
    chained query streams; here a single generator derives both from one
    underlying smart-grid stream so that their values are consistent:
    per timestamp it emits one global-average tuple and one local-average
    tuple per plug.  ``for_stream`` selects which of the pair an engine
    source yields.
    """

    def __init__(self, seed: int = 1, plugs: int = 16, anomaly_rate: float = 0.05) -> None:
        self._rng = np.random.default_rng(seed)
        self._plugs = plugs
        self._anomaly_rate = anomaly_rate
        self._time = 0
        self._pending_global: list[np.ndarray] = []
        self._pending_local: list[np.ndarray] = []

    def _generate_second(self) -> None:
        rng = self._rng
        t = self._time
        self._time += 1
        local = 50.0 + rng.normal(0.0, 5.0, self._plugs)
        spikes = rng.random(self._plugs) < self._anomaly_rate
        local = local + spikes * rng.uniform(30.0, 80.0, self._plugs)
        global_avg = float(local.mean())
        self._pending_global.append(
            np.array([(t, global_avg)], dtype=GLOBAL_LOAD_SCHEMA.dtype)
        )
        rows = np.zeros(self._plugs, dtype=LOCAL_LOAD_SCHEMA.dtype)
        rows["timestamp"] = t
        rows["plug"] = np.arange(self._plugs) % 4
        rows["household"] = (np.arange(self._plugs) // 4) % 4
        rows["house"] = np.arange(self._plugs) // 16
        rows["localAvgLoad"] = local.astype(np.float32)
        self._pending_local.append(rows)

    def stream(self, which: str, limit: "int | None" = None) -> "_DerivedStream":
        return _DerivedStream(self, which, limit=limit)

    def _next(self, which: str, count: int) -> np.ndarray:
        pending = self._pending_global if which == "global" else self._pending_local
        while sum(len(p) for p in pending) < count:
            self._generate_second()
        rows = np.concatenate(pending)
        out, rest = rows[:count], rows[count:]
        pending.clear()
        if len(rest):
            pending.append(rest)
        return out


class _DerivedStream(GeneratorSource):
    """Source view over one half of a :class:`DerivedLoadSource`."""

    def __init__(
        self, parent: DerivedLoadSource, which: str, limit: "int | None" = None
    ) -> None:
        if which not in ("global", "local"):
            raise ValueError("which must be 'global' or 'local'")
        schema = GLOBAL_LOAD_SCHEMA if which == "global" else LOCAL_LOAD_SCHEMA
        super().__init__(schema, limit=limit)
        self._parent = parent
        self._which = which

    def generate(self, count: int) -> TupleBatch:
        return TupleBatch(self.schema, self._parent._next(self._which, count))


def sg1_query() -> Query:
    """SG1: sliding global load average, ω(3600, 1).

    ``select timestamp, avg(value) from SmartGridStr [range 3600 slide 1]``
    """
    return (
        Stream.named("SmartGridStr", SMART_GRID_SCHEMA)
        .window(time=3600, slide=1)
        .aggregate(agg.avg("value", "globalAvgLoad"))
        .build("SG1")
    )


def sg2_query() -> Query:
    """SG2: sliding per-plug load average, ω(3600, 1) with GROUP-BY."""
    return (
        Stream.named("SmartGridStr", SMART_GRID_SCHEMA)
        .window(time=3600, slide=1)
        .group_by("plug", "household", "house", agg.avg("value", "localAvgLoad"))
        .build("SG2")
    )


def sg3_query() -> Query:
    """SG3: join local vs. global averages to flag outlier houses.

    The θ-join of the derived SG1/SG2 streams over tumbling ω(1, 1)
    windows with ``L.localAvgLoad > G.globalAvgLoad`` (the trailing
    per-house count of Appendix A.2 is a cheap post-aggregation over the
    join's output stream, see ``examples/smart_grid.py``).
    """
    local = Stream.named("LocalLoadStr", LOCAL_LOAD_SCHEMA).window(time=1, slide=1)
    global_ = Stream.named("GlobalLoadStr", GLOBAL_LOAD_SCHEMA).window(time=1, slide=1)
    return (
        local.join(
            global_,
            on=col("localAvgLoad") > col("globalAvgLoad"),
            right_prefix="g_",
            # The local stream carries one tuple per plug per second versus
            # one global tuple; proportional batches keep the streams'
            # windows aligned within a task.
            rates=(16.0, 1.0),
        )
        .build("SG3")
    )
