"""Record conversion: Python rows ↔ packed tuple batches ↔ text lines.

Connectors speak three dialects of the same data:

* **batches** — the engine's packed :class:`TupleBatch`;
* **rows** — Python dicts (by attribute name) or sequences (in schema
  order), the shape ``session.push`` and file/socket lines carry;
* **lines** — the JSONL / CSV text encodings used by the file-replay
  and TCP line-protocol connectors.

Numeric fidelity matters for the replay-equivalence guarantee: values
are converted through Python floats (IEEE-754 doubles), which represent
every ``float32`` exactly and round-trip exactly through ``repr`` — so
a batch written to JSONL/CSV and replayed is *byte-identical* to the
original.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch

__all__ = [
    "as_batch",
    "rows_to_batch",
    "batch_to_rows",
    "batch_to_jsonl",
    "batch_to_csv",
    "jsonl_to_rows",
    "csv_to_rows",
]


def as_batch(schema: Schema, records: Any) -> TupleBatch:
    """Coerce pushable records into a :class:`TupleBatch`.

    Accepts a batch (schema-checked), a numpy structured array, or an
    iterable of rows (dicts keyed by attribute name, or sequences in
    schema order).
    """
    if isinstance(records, TupleBatch):
        if records.schema.dtype != schema.dtype:
            raise ValidationError(
                f"pushed batch has schema {records.schema.name!r}, "
                f"stream expects {schema.name!r}"
            )
        return records
    if isinstance(records, np.ndarray):
        return TupleBatch(schema, records)
    if isinstance(records, (str, bytes)):
        raise ValidationError(
            "push records as rows/batches, not raw text; use the file or "
            "socket connectors for encoded data"
        )
    return rows_to_batch(schema, records)


def rows_to_batch(schema: Schema, rows: Iterable[Any]) -> TupleBatch:
    """Build a batch from dict rows (by name) or sequence rows (by order)."""
    names = schema.attribute_names
    columns: "dict[str, list]" = {n: [] for n in names}
    count = 0
    for row in rows:
        count += 1
        if isinstance(row, dict):
            try:
                for n in names:
                    columns[n].append(row[n])
            except KeyError as exc:
                raise ValidationError(
                    f"row {count} is missing attribute {exc.args[0]!r} of "
                    f"schema {schema.name!r}"
                ) from None
        elif isinstance(row, Sequence) and not isinstance(row, (str, bytes)):
            if len(row) != len(names):
                raise ValidationError(
                    f"row {count} has {len(row)} values; schema "
                    f"{schema.name!r} has {len(names)} attributes"
                )
            for n, value in zip(names, row):
                columns[n].append(value)
        else:
            raise ValidationError(
                f"row {count} is a {type(row).__name__}; expected a dict or "
                "a sequence of attribute values"
            )
    data = np.empty(count, dtype=schema.dtype)
    for attr in schema.attributes:
        try:
            data[attr.name] = np.asarray(columns[attr.name], dtype=attr.dtype)
        except (ValueError, TypeError, OverflowError) as exc:
            # Typed so connector threads surface corruption instead of
            # dying on a bare ValueError (read as a clean end-of-stream).
            raise ValidationError(
                f"attribute {attr.name!r} of schema {schema.name!r} cannot "
                f"be converted to {attr.type_name}: {exc}"
            ) from None
    return TupleBatch(schema, data)


def batch_to_rows(batch: TupleBatch) -> "list[dict[str, Any]]":
    """Materialise a batch as dict rows of plain Python scalars."""
    names = batch.schema.attribute_names
    columns = [batch.data[n].tolist() for n in names]
    return [dict(zip(names, values)) for values in zip(*columns)]


# -- text encodings ----------------------------------------------------------


def batch_to_jsonl(batch: TupleBatch) -> str:
    """One JSON object per line, keyed by attribute name."""
    return "".join(
        json.dumps(row, separators=(",", ":")) + "\n"
        for row in batch_to_rows(batch)
    )


def batch_to_csv(batch: TupleBatch, header: bool = False) -> str:
    """CSV lines with values in schema order (header optional)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    if header:
        writer.writerow(batch.schema.attribute_names)
    names = batch.schema.attribute_names
    columns = [batch.data[n].tolist() for n in names]
    writer.writerows(zip(*columns))
    return out.getvalue()


def jsonl_to_rows(schema: Schema, lines: Iterable[str]) -> "list[dict]":
    """Parse JSONL lines into dict rows (blank lines skipped)."""
    rows = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"line {i + 1} is not valid JSON for stream "
                f"{schema.name!r}: {exc}"
            ) from None
        if not isinstance(row, dict):
            raise ValidationError(
                f"line {i + 1}: expected a JSON object, got "
                f"{type(row).__name__}"
            )
        rows.append(row)
    return rows


def csv_to_rows(schema: Schema, lines: Iterable[str]) -> "list[dict]":
    """Parse CSV lines (values in schema order; header auto-skipped)."""
    names = schema.attribute_names
    rows = []
    for values in csv.reader(lines):
        if not values:
            continue
        if tuple(values) == names:  # header line
            continue
        if len(values) != len(names):
            raise ValidationError(
                f"CSV row has {len(values)} values; schema {schema.name!r} "
                f"has {len(names)} attributes"
            )
        row = {}
        for attr, text in zip(schema.attributes, values):
            kind = attr.dtype.kind
            try:
                row[attr.name] = int(text) if kind == "i" else float(text)
            except ValueError:
                raise ValidationError(
                    f"CSV value {text!r} is not a valid {attr.type_name} "
                    f"for attribute {attr.name!r} of schema {schema.name!r}"
                ) from None
        rows.append(row)
    return rows
