"""Data-plane connectors: pluggable sources and sinks (the I/O SPI).

How data gets **in**:

* :class:`MemorySource` — finite, from in-memory rows or a batch;
* :class:`PushSource` / :class:`PushHandle` — producer-driven ingestion
  through a bounded ingress queue (``session.push(name, records)``);
* :class:`FileReplaySource` — JSONL/CSV replay, optionally paced by a
  :class:`ReplayClock`;
* :class:`SocketSource` — TCP line protocol (one producer connection);
* :class:`PullAdapter` — shim over the legacy ``next_tuples`` protocol
  (any pre-SPI generator also still works unwrapped);
* :class:`GeneratorSource` — base class of the bundled workload
  generators; ``limit=`` makes any of them finite.

How data gets **out** (attach to a query via ``submit(..., sink=...)``
or ``handle.add_sink``):

* :class:`MemorySink`, :class:`CallbackSink`, :class:`FileSink`,
  :class:`SocketSink`.

Finite sources end with :class:`~repro.errors.EndOfStream`; the engine
drains the query, flushes its still-open windows and completes its
handle.  Bounded stages apply a :class:`BackpressurePolicy` (block /
drop-oldest / error).  See ``docs/api.md`` for the SPI contract.
"""

from .base import (
    BackpressurePolicy,
    GeneratorSource,
    PullAdapter,
    SinkConnector,
    SourceConnector,
    validate_source,
)
from .files import FileReplaySource, FileSink, ReplayClock, write_batch
from .memory import CallbackSink, MemorySink, MemorySource
from .push import PushHandle, PushSource
from .records import as_batch, batch_to_rows, rows_to_batch
from .sockets import SocketSink, SocketSource

__all__ = [
    "BackpressurePolicy",
    "SourceConnector",
    "SinkConnector",
    "GeneratorSource",
    "PullAdapter",
    "validate_source",
    "MemorySource",
    "MemorySink",
    "CallbackSink",
    "PushSource",
    "PushHandle",
    "FileReplaySource",
    "FileSink",
    "ReplayClock",
    "write_batch",
    "SocketSource",
    "SocketSink",
    "as_batch",
    "rows_to_batch",
    "batch_to_rows",
]
