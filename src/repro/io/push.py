"""Push ingestion: a bounded ingress queue behind the pull SPI.

The dispatcher only ever *pulls* fixed-size batches (§4.1's single
dispatching worker).  :class:`PushSource` adapts producer-driven
ingestion onto that contract: producers ``push(records)`` into a
bounded, tuple-counted queue from any thread; the dispatcher's
``next_tuples(count)`` blocks until ``count`` tuples are queued (or the
stream is closed) and drains exactly that many.

The queue's :class:`~repro.io.BackpressurePolicy` governs a full queue:

* ``BLOCK`` — ``push`` waits for the dispatcher to drain (lossless);
* ``DROP_OLDEST`` — the oldest *queued* tuples are evicted to admit the
  new ones (counted on :attr:`PushSource.dropped_tuples`); data the
  dispatcher already moved into circular buffers is never dropped,
  because in-flight query tasks reference it;
* ``ERROR`` — ``push`` raises :class:`~repro.errors.BackpressureError`.

``close()`` ends the stream: the final short batch is handed to the
dispatcher via :class:`~repro.errors.EndOfStream` and the query
completes.  :class:`PushHandle` is the producer-facing slice of this
surface (``session.push_handle(name)`` returns one).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

import numpy as np

from ..analysis.lockdep import make_condition
from ..errors import BackpressureError, EndOfStream, IngestInterrupted, ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from .base import BackpressurePolicy, SourceConnector
from .records import as_batch

__all__ = ["PushSource", "PushHandle"]

#: belt-and-braces re-check interval for blocking waits; every push,
#: drain and close notifies the condition, so this is not a period.
_WAIT_TIMEOUT = 0.05


class PushSource(SourceConnector):
    """Thread-safe bounded ingress queue exposing the pull SPI.

    ``capacity_tuples`` bounds producer run-ahead (memory), not
    throughput; size it to a few query tasks — at least one task's
    worth, or the dispatcher's fixed-size pull can never be satisfied.
    One queue supports many producer threads; the single consumer is
    the dispatcher.
    """

    def __init__(
        self,
        schema: Schema,
        capacity_tuples: int = 1 << 16,
        policy: "BackpressurePolicy | str" = BackpressurePolicy.BLOCK,
    ) -> None:
        if capacity_tuples <= 0:
            raise ValidationError(f"push capacity must be positive, got {capacity_tuples}")
        self.schema = schema
        self.capacity_tuples = int(capacity_tuples)
        self.policy = BackpressurePolicy.of(policy)
        self._segments: "deque[np.ndarray]" = deque()
        self._queued = 0
        self._closed = False
        self._cond = make_condition("io.push.PushSource._cond")
        #: tuples evicted under the DROP_OLDEST policy.
        self.dropped_tuples = 0

    # -- producer side -------------------------------------------------------

    def push(self, records: Any) -> int:
        """Enqueue records (batch, structured array, or rows); returns
        the number of tuples accepted.  Thread-safe."""
        batch = as_batch(self.schema, records)
        n = len(batch)
        if n == 0:
            return 0
        # Copy at the ingress boundary: the queue must not alias the
        # caller's array — producers commonly reuse their push buffer
        # before the dispatcher drains, and _drain keeps sub-slices
        # queued across pulls.
        data = np.array(batch.data, dtype=self.schema.dtype, copy=True)
        with self._cond:
            if self._closed:
                raise ValidationError(f"stream {self.schema.name!r} is closed; cannot push")
            if self.policy is BackpressurePolicy.BLOCK:
                # Progressive admission: enqueue whatever fits as room
                # appears.  Waiting for the whole batch to fit at once
                # can deadlock (a batch larger than the capacity, or a
                # sub-task residue the dispatcher never drains), and
                # cross-producer segment order is undefined anyway.
                offset = 0
                while offset < n:
                    take = self._wait_for_room(n - offset)
                    self._segments.append(data[offset : offset + take])
                    self._queued += take
                    offset += take
                    self._cond.notify_all()
                return n
            elif self.policy is BackpressurePolicy.ERROR:
                if self._queued + n > self.capacity_tuples:
                    raise BackpressureError(
                        f"push of {n} tuples exceeds the ingress queue of "
                        f"stream {self.schema.name!r} ({self._queued} queued, "
                        f"capacity {self.capacity_tuples})"
                    )
            else:  # DROP_OLDEST
                while self._segments and self._queued + n > self.capacity_tuples:
                    evicted = self._segments.popleft()
                    self._queued -= len(evicted)
                    self.dropped_tuples += len(evicted)
                if n > self.capacity_tuples:
                    # Even an empty queue cannot hold it: keep the newest.
                    self.dropped_tuples += n - self.capacity_tuples
                    data = data[n - self.capacity_tuples :]
                    n = len(data)
            self._segments.append(data)
            self._queued += n
            self._cond.notify_all()
        return n

    def _wait_for_room(self, wanted: int) -> int:
        """Block until any room exists (caller holds the lock); returns
        the number of tuples admissible now, at most ``wanted``."""
        while self._queued >= self.capacity_tuples and not self._closed:
            self._cond.wait(_WAIT_TIMEOUT)
        if self._closed:
            raise ValidationError(
                f"stream {self.schema.name!r} was closed while a "
                "push was blocked on backpressure"
            )
        return min(wanted, self.capacity_tuples - self._queued)

    def close(self) -> None:
        """End of stream: no further pushes; queued tuples still drain."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queued_tuples(self) -> int:
        with self._cond:
            return self._queued

    # -- consumer (dispatcher) side ------------------------------------------

    def next_tuples(self, count: int) -> TupleBatch:
        with self._cond:
            while self._queued < count and not self._closed:
                if self._stop_requested():
                    raise IngestInterrupted(
                        f"stream {self.schema.name!r}: pull interrupted by "
                        "engine stop"
                    )
                self._cond.wait(_WAIT_TIMEOUT)
            if self._queued >= count:
                batch = self._drain(count)
                self._cond.notify_all()  # queue space freed
                return batch
            # Closed with a short tail: the stream is over.
            remainder = self._drain(self._queued) if self._queued else None
            raise EndOfStream(remainder)

    def _drain(self, count: int) -> TupleBatch:
        """Pop exactly ``count`` tuples (caller holds the lock)."""
        parts: "list[np.ndarray]" = []
        needed = count
        while needed:
            segment = self._segments.popleft()
            if len(segment) <= needed:
                parts.append(segment)
                needed -= len(segment)
            else:
                parts.append(segment[:needed])
                self._segments.appendleft(segment[needed:])
                needed = 0
        self._queued -= count
        data = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return TupleBatch(self.schema, data)


class PushHandle:
    """Producer-facing view of a pushable stream.

    Sessions hand these out (``session.push_handle(name)``) so producer
    code can ingest and close a stream without holding the session or
    the underlying connector.
    """

    def __init__(self, source: PushSource) -> None:
        if not callable(getattr(source, "push", None)):
            raise ValidationError(
                f"source {type(source).__name__!r} is not push-capable "
                "(no .push method)"
            )
        self._source = source

    @property
    def schema(self) -> Schema:
        return self._source.schema

    def push(self, records: Any) -> int:
        return self._source.push(records)

    def close(self) -> None:
        self._source.close()

    @property
    def closed(self) -> bool:
        return self._source.closed

    def __enter__(self) -> "PushHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
