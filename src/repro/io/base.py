"""Data-plane connector SPI: how tuples enter and leave the engine.

SABER's data plane ingests tuples into per-query circular byte buffers
and applies backpressure when dispatch falls behind (§5.1).  This module
defines the pluggable I/O surface in front of that machinery:

* :class:`SourceConnector` — the **pull SPI** the dispatcher consumes.
  ``next_tuples(count)`` returns *exactly* ``count`` tuples, blocking
  until they are available, and raises
  :class:`~repro.errors.EndOfStream` (carrying the final short batch)
  once the stream is exhausted.  Push-style ingestion (``session.push``,
  sockets) is adapted onto this pull contract by a bounded ingress queue
  (:mod:`repro.io.push`).
* :class:`SinkConnector` — the **output SPI** a
  :class:`~repro.api.QueryHandle` drives: ``open(schema)`` once, then
  ``write(batch)`` per ordered output chunk, ``close()`` at session end.
* :class:`BackpressurePolicy` — what a bounded stage does when full:
  ``BLOCK`` the producer, ``DROP_OLDEST`` queued data (ingress load
  shedding), or fail fast with a typed
  :class:`~repro.errors.BackpressureError`.

Any object satisfying the duck-typed contract works — the ABCs exist
for shared plumbing (limits, lifecycle) and isinstance-based niceties,
not as a gate.  ``validate_source`` is the eager SPI check sessions run
at ``register_stream`` time.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from ..errors import EndOfStream, ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch

__all__ = [
    "BackpressurePolicy",
    "SourceConnector",
    "SinkConnector",
    "GeneratorSource",
    "PullAdapter",
    "validate_source",
]


class BackpressurePolicy(enum.Enum):
    """What a full bounded stage does with new data.

    * ``BLOCK`` — the producer waits for space (lossless; the default).
    * ``DROP_OLDEST`` — evict the oldest *queued* data to admit the new
      (ingress load shedding; data already referenced by query tasks is
      never dropped).
    * ``ERROR`` — raise :class:`~repro.errors.BackpressureError`.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    ERROR = "error"

    @classmethod
    def of(cls, value: "BackpressurePolicy | str") -> "BackpressurePolicy":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            options = sorted(p.value for p in cls)
            raise ValidationError(
                f"unknown backpressure policy {value!r}; expected one of {options}"
            ) from None


class SourceConnector:
    """Base class for pull sources (the dispatcher-facing SPI).

    Contract of :meth:`next_tuples`:

    * returns a :class:`TupleBatch` of **exactly** ``count`` tuples,
      blocking until that many are available (fixed-size query tasks are
      the paper's dispatch unit, so the dispatcher never wants less);
    * raises :class:`~repro.errors.EndOfStream` — with the final short
      batch as ``remainder`` — once the stream cannot produce ``count``
      more tuples, ever;
    * raises :class:`~repro.errors.IngestInterrupted` from a blocking
      wait when the engine requested a stop (sources learn about stops
      via :meth:`bind_stop`).

    ``open``/``close``/``cancel`` are lifecycle hooks with no-op
    defaults so simple in-memory sources stay one method big.
    """

    schema: Schema

    def next_tuples(self, count: int) -> TupleBatch:
        raise NotImplementedError

    def open(self) -> None:
        """Acquire external resources (files, sockets).  Idempotent."""

    def close(self) -> None:
        """End the stream and release resources.  Idempotent.

        ``close`` is *terminal* for every bundled connector: the next
        pull observes end-of-stream — it never rewinds or restarts.
        ``session.close_stream(name)`` relies on this.
        """

    def bind_stop(self, check: "Callable[[], bool]") -> None:
        """Install the engine's stop probe; blocking pulls poll it."""
        self._stop_check = check

    def _stop_requested(self) -> bool:
        check = getattr(self, "_stop_check", None)
        return bool(check and check())


class GeneratorSource(SourceConnector):
    """Base for programmatic sources: subclass :meth:`generate`.

    ``limit`` (tuples) turns an unbounded generator into a finite
    stream: the limit-crossing pull raises
    :class:`~repro.errors.EndOfStream` carrying the final short batch.
    All bundled workload sources derive from this, which is how every
    Table-1 workload doubles as a finite connector.
    """

    def __init__(self, schema: Schema, limit: "int | None" = None) -> None:
        if limit is not None and limit < 0:
            raise ValidationError(f"source limit must be >= 0, got {limit}")
        self.schema = schema
        self._limit = limit
        self._produced = 0

    def generate(self, count: int) -> TupleBatch:
        """Produce the next ``count`` tuples (subclass responsibility)."""
        raise NotImplementedError

    def close(self) -> None:
        """End the stream at its current position (terminal)."""
        self._limit = self._produced

    def next_tuples(self, count: int) -> TupleBatch:
        if self._limit is None:
            return self.generate(count)
        remaining = self._limit - self._produced
        if remaining >= count:
            self._produced += count
            return self.generate(count)
        self._produced = self._limit
        raise EndOfStream(self.generate(remaining) if remaining > 0 else None)


class PullAdapter(GeneratorSource):
    """Shim wrapping a legacy pull object (anything with ``schema`` +
    ``next_tuples``) into the connector SPI.

    The pre-SPI protocol — infinite generators returning exactly
    ``count`` tuples — keeps working unwrapped, since the dispatcher
    duck-types; wrap when you additionally want connector lifecycle or a
    finite ``limit``.
    """

    def __init__(self, source: Any, limit: "int | None" = None) -> None:
        schema = getattr(source, "schema", None)
        validate_source(getattr(schema, "name", "?"), source)
        super().__init__(source.schema, limit=limit)
        self._wrapped = source

    def generate(self, count: int) -> TupleBatch:
        return self._wrapped.next_tuples(count)


class SinkConnector:
    """Base class for output sinks, driven by a query handle.

    ``open(schema)`` is called once when the sink is attached to a
    query (the query's *output* schema); ``write(batch)`` once per
    ordered output chunk, on the emitting worker's thread — keep it
    fast; ``close()`` when the session closes.  All are idempotent
    no-ops by default.
    """

    def open(self, schema: Schema) -> None:
        """Bind to the query's output schema and acquire resources."""

    def write(self, batch: TupleBatch) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources.  Idempotent."""


def validate_source(name: str, source: Any) -> None:
    """Eagerly check an object against the source SPI contract.

    Sessions call this at ``register_stream``/``submit`` time so a bad
    source fails by *stream name* instead of deep inside dispatch.
    """
    problems = []
    schema = getattr(source, "schema", None)
    if schema is None:
        problems.append("it has no .schema attribute")
    elif not isinstance(schema, Schema):
        problems.append(f".schema is a {type(schema).__name__}, not a repro Schema")
    if not callable(getattr(source, "next_tuples", None)):
        pushable = callable(getattr(source, "push", None))
        hint = " (a push source must still expose the pull side)" if pushable else ""
        problems.append(f"it has no callable .next_tuples(count){hint}")
    if problems:
        raise ValidationError(
            f"stream {name!r}: source {type(source).__name__!r} does not "
            f"satisfy the connector SPI: " + "; ".join(problems)
        )
