"""TCP line-protocol connectors.

:class:`SocketSource` accepts one producer connection and parses
newline-delimited records (JSONL objects or CSV values in schema order)
into a bounded ingress queue — it *is* a :class:`~repro.io.PushSource`
fed by a reader thread, so backpressure policies and EOS semantics are
identical to in-process push ingestion.  The producer closing its
connection is end-of-stream.

:class:`SocketSink` is the matching producer side: it connects to a
line-protocol endpoint and writes query output (or recorded batches —
the benchmark uses it as a load generator) as JSONL/CSV lines.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable

from ..errors import EndOfStream, ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from .base import BackpressurePolicy, SinkConnector, SourceConnector
from .push import PushSource
from .records import batch_to_csv, batch_to_jsonl, csv_to_rows, jsonl_to_rows

__all__ = ["SocketSource", "SocketSink"]

#: parsed-line batching granularity of the reader thread.
_READ_CHUNK_LINES = 256


class SocketSource(SourceConnector):
    """Listens for one TCP producer and exposes its lines as a stream.

    Binds immediately (``port=0`` picks an ephemeral port — read
    :attr:`address` to learn it) and accepts in a daemon reader thread,
    so construction never blocks.  Disconnect = end of stream.
    """

    def __init__(
        self,
        schema: Schema,
        host: str = "127.0.0.1",
        port: int = 0,
        format: str = "jsonl",
        capacity_tuples: int = 1 << 16,
        policy: "BackpressurePolicy | str" = BackpressurePolicy.BLOCK,
    ) -> None:
        if format not in ("jsonl", "csv"):
            raise ValidationError(f"unknown socket format {format!r}; expected 'jsonl' or 'csv'")
        self.schema = schema
        self.format = format
        self._queue = PushSource(schema, capacity_tuples=capacity_tuples, policy=policy)
        self._error: "ValidationError | None" = None
        self._server = socket.create_server((host, port))
        self.address: "tuple[str, int]" = self._server.getsockname()[:2]
        self._reader = threading.Thread(
            target=self._read_loop, name="saber-socket-source", daemon=True
        )
        self._reader.start()

    # -- reader thread -------------------------------------------------------

    def _read_loop(self) -> None:
        parse = jsonl_to_rows if self.format == "jsonl" else csv_to_rows
        try:
            conn, __ = self._server.accept()
        except OSError:
            self._queue.close()  # listener closed before any producer
            return
        try:
            with conn, conn.makefile("r", encoding="utf-8") as lines:
                pending: "list[str]" = []
                for line in lines:
                    pending.append(line)
                    if len(pending) >= _READ_CHUNK_LINES:
                        self._queue.push(parse(self.schema, pending))
                        pending.clear()
                if pending:
                    self._queue.push(parse(self.schema, pending))
        except ValidationError as exc:
            # Malformed line: a corrupt stream, not a clean end — the
            # consumer re-raises this instead of reporting end-of-stream.
            # (Unless the queue was closed under the reader: that is a
            # shutdown race, not corruption.)
            if not self._queue.closed:
                self._error = exc
        except OSError:
            pass  # disconnect ends the stream below
        finally:
            self._queue.close()
            try:
                self._server.close()
            except OSError:
                pass

    # -- pull SPI (delegated to the ingress queue) ---------------------------

    def next_tuples(self, count: int) -> TupleBatch:
        if self._error is not None:
            raise self._error
        try:
            return self._queue.next_tuples(count)
        except EndOfStream:
            if self._error is not None:
                raise self._error from None
            raise

    def bind_stop(self, check: "Callable[[], bool]") -> None:
        self._queue.bind_stop(check)

    @property
    def dropped_tuples(self) -> int:
        return self._queue.dropped_tuples

    @property
    def queued_tuples(self) -> int:
        return self._queue.queued_tuples

    def close(self) -> None:
        self._queue.close()
        try:
            self._server.close()
        except OSError:
            pass


class SocketSink(SinkConnector):
    """Writes batches as newline-delimited records to a TCP endpoint."""

    def __init__(self, host: str, port: int, format: str = "jsonl", timeout: float = 10.0) -> None:
        if format not in ("jsonl", "csv"):
            raise ValidationError(f"unknown socket format {format!r}; expected 'jsonl' or 'csv'")
        self.host = host
        self.port = int(port)
        self.format = format
        self.timeout = timeout
        self._sock: "socket.socket | None" = None
        self.rows_written = 0

    def open(self, schema: "Schema | None" = None) -> None:
        if self._sock is None:
            self._sock = socket.create_connection((self.host, self.port), timeout=self.timeout)

    def write(self, batch: TupleBatch) -> None:
        self.open()
        encode = batch_to_jsonl if self.format == "jsonl" else batch_to_csv
        self._sock.sendall(encode(batch).encode("utf-8"))
        self.rows_written += len(batch)

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            self._sock.close()
            self._sock = None
