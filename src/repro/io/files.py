"""File connectors: JSONL/CSV replay sources and file sinks.

:class:`FileReplaySource` replays a recorded stream through the pull
SPI, optionally paced by a :class:`ReplayClock` so a trace recorded at
production rates can be re-ingested at a controlled tuples-per-second
rate (or as fast as the dispatcher pulls, the default).

Replay is *exact*: values round-trip through text encodings without
loss (see :mod:`repro.io.records`), so a workload replayed from a file
produces byte-identical query results to the same data served from
memory — the acceptance property the equivalence tests pin.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable

from ..errors import EndOfStream, IngestInterrupted, ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from .base import SourceConnector, SinkConnector
from .records import batch_to_csv, batch_to_jsonl, csv_to_rows, jsonl_to_rows, rows_to_batch

__all__ = [
    "ReplayClock",
    "FileReplaySource",
    "FileSink",
    "detect_format",
    "write_batch",
]

#: sleep quantum while pacing, so stop requests interrupt promptly.
_SLEEP_QUANTUM = 0.02


def detect_format(path: "str | Path", format: "str | None") -> str:
    """Resolve an explicit or suffix-derived line format."""
    if format is not None:
        if format not in ("jsonl", "csv"):
            raise ValidationError(f"unknown file format {format!r}; expected 'jsonl' or 'csv'")
        return format
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson", ".json"):
        return "jsonl"
    if suffix == ".csv":
        return "csv"
    raise ValidationError(
        f"cannot infer format from {Path(path).name!r}; pass format='jsonl' "
        "or format='csv'"
    )


class ReplayClock:
    """Token-bucket pacing for replayed streams.

    ``rate`` is tuples per wall-clock second.  ``pace(n)`` blocks until
    the bucket admits ``n`` more tuples, polling ``stop_check`` so an
    engine stop interrupts a paced replay.  Injectable time functions
    keep tests fast.
    """

    def __init__(
        self,
        rate: float,
        now: "Callable[[], float]" = time.monotonic,
        sleep: "Callable[[float], None]" = time.sleep,
    ) -> None:
        if rate <= 0:
            raise ValidationError(f"replay rate must be positive, got {rate}")
        self.rate = float(rate)
        self._now = now
        self._sleep = sleep
        self._start: "float | None" = None
        self._released = 0

    def pace(self, tuples: int, stop_check: "Callable[[], bool] | None" = None) -> None:
        if self._start is None:
            self._start = self._now()
        self._released += tuples
        due = self._start + self._released / self.rate
        while True:
            delay = due - self._now()
            if delay <= 0:
                return
            if stop_check is not None and stop_check():
                raise IngestInterrupted("paced replay interrupted by engine stop")
            self._sleep(min(delay, _SLEEP_QUANTUM))


class FileReplaySource(SourceConnector):
    """Replays a JSONL/CSV file as a finite stream.

    Lines are parsed lazily in ``next_tuples``-sized gulps; end of file
    raises :class:`~repro.errors.EndOfStream` with the final short
    batch.  ``rate`` (tuples/second) enables paced replay via a
    :class:`ReplayClock`; pass ``clock`` to share or fake the pacer.
    """

    def __init__(
        self,
        path: "str | Path",
        schema: Schema,
        format: "str | None" = None,
        rate: "float | None" = None,
        clock: "ReplayClock | None" = None,
    ) -> None:
        self.path = Path(path)
        self.schema = schema
        self.format = detect_format(path, format)
        if not self.path.exists():
            # Eager, like source validation: a typo'd path must fail at
            # construction, not deep inside dispatch on the first pull.
            raise ValidationError(f"replay file {str(self.path)!r} does not exist")
        if clock is None and rate is not None:
            clock = ReplayClock(rate)
        self._clock = clock
        self._file = None
        self._exhausted = False

    def open(self) -> None:
        if self._file is None:
            self._file = self.path.open("r", encoding="utf-8")

    def close(self) -> None:
        """End the stream and release the file.

        Closing mid-replay is terminal (the next pull sees end-of-stream)
        — a half-consumed replay must not silently rewind to line 0.
        """
        self._exhausted = True
        self._release_file()

    def _release_file(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def _read_rows(self, count: int) -> "list[dict]":
        """Parse up to ``count`` rows from the file (skipping blanks)."""
        parse = jsonl_to_rows if self.format == "jsonl" else csv_to_rows
        rows: "list[dict]" = []
        while len(rows) < count:
            lines = []
            while len(lines) < count - len(rows):
                line = self._file.readline()
                if not line:
                    break
                lines.append(line)
            if not lines:
                break
            rows.extend(parse(self.schema, lines))
        return rows

    def next_tuples(self, count: int) -> TupleBatch:
        if self._exhausted:
            raise EndOfStream(None)
        self.open()
        rows = self._read_rows(count)
        if self._clock is not None and rows:
            self._clock.pace(len(rows), stop_check=self._stop_requested)
        if len(rows) == count:
            return rows_to_batch(self.schema, rows)
        self._exhausted = True
        self._release_file()
        tail = rows_to_batch(self.schema, rows) if rows else None
        raise EndOfStream(tail)


class FileSink(SinkConnector):
    """Appends query output chunks to a JSONL or CSV file.

    CSV files start with a header row naming the output attributes;
    JSONL rows are self-describing.  The file handle opens lazily on
    attach and flushes per chunk, so a replayed pipeline's output is
    tail-able while it runs.
    """

    def __init__(self, path: "str | Path", format: "str | None" = None) -> None:
        self.path = Path(path)
        self.format = detect_format(path, format)
        self.schema: "Schema | None" = None
        self._file = None
        self.rows_written = 0

    def open(self, schema: Schema) -> None:
        self.schema = schema
        if self._file is None:
            self._file = self.path.open("w", encoding="utf-8")
            if self.format == "csv":
                self._file.write(",".join(schema.attribute_names) + "\n")

    def write(self, batch: TupleBatch) -> None:
        if self._file is None:
            self.open(batch.schema)
        encode = batch_to_jsonl if self.format == "jsonl" else batch_to_csv
        self._file.write(encode(batch))
        self._file.flush()
        self.rows_written += len(batch)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def write_batch(path: "str | Path", batch: TupleBatch, format: "str | None" = None) -> Path:
    """Record a batch to a JSONL/CSV file (the replay-side inverse)."""
    path = Path(path)
    resolved = detect_format(path, format)
    with path.open("w", encoding="utf-8") as f:
        if resolved == "csv":
            f.write(batch_to_csv(batch, header=True))
        else:
            f.write(batch_to_jsonl(batch))
    return path
