"""In-memory connectors: finite record sources, collecting sinks.

These are the simplest SPI implementations — the reference semantics the
file and socket connectors must match — and the workhorses of tests and
benchmarks.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import EndOfStream, ValidationError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from .base import SinkConnector, SourceConnector
from .records import as_batch

__all__ = ["MemorySource", "MemorySink", "CallbackSink"]


class MemorySource(SourceConnector):
    """Finite source over in-memory records (a batch or rows).

    The whole dataset is materialised up front; ``next_tuples`` serves
    consecutive slices and signals :class:`~repro.errors.EndOfStream`
    at the end — the minimal finite stream.
    """

    def __init__(self, schema: Schema, records: Any) -> None:
        self.schema = schema
        self._data = as_batch(schema, records)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def remaining(self) -> int:
        return len(self._data) - self._cursor

    def close(self) -> None:
        """End the stream at its current position (terminal)."""
        self._cursor = len(self._data)

    def next_tuples(self, count: int) -> TupleBatch:
        start = self._cursor
        if self.remaining >= count:
            self._cursor = start + count
            return self._data.slice(start, self._cursor)
        self._cursor = len(self._data)
        tail = self._data.slice(start, self._cursor)
        raise EndOfStream(tail if len(tail) else None)


class MemorySink(SinkConnector):
    """Collects every output chunk; offers the concatenated stream."""

    def __init__(self) -> None:
        self.batches: "list[TupleBatch]" = []
        self.schema: "Schema | None" = None
        self.closed = False

    def open(self, schema: Schema) -> None:
        self.schema = schema

    def write(self, batch: TupleBatch) -> None:
        self.batches.append(batch)

    def close(self) -> None:
        self.closed = True

    @property
    def rows_written(self) -> int:
        return sum(len(b) for b in self.batches)

    def output(self) -> "TupleBatch | None":
        """The concatenated output stream collected so far."""
        batches = [b for b in self.batches if len(b)]
        if not batches:
            return None
        return TupleBatch.concat(batches)


class CallbackSink(SinkConnector):
    """Adapts a plain callable into the sink SPI."""

    def __init__(self, callback: "Callable[[TupleBatch], None]") -> None:
        if not callable(callback):
            raise ValidationError(f"CallbackSink needs a callable, got {type(callback).__name__}")
        self._callback = callback

    def write(self, batch: TupleBatch) -> None:
        self._callback(batch)
