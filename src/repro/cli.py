"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — execute a named application query (Table 1) or an ad-hoc CQL
  string over one of the bundled workloads and print a run report;
* ``replay`` — replay a recorded JSONL/CSV stream file through a query
  (named or ad-hoc CQL) and optionally write the output to a file sink;
* ``record`` — record a bundled workload stream to a JSONL/CSV file
  (the replay-side inverse, for producing test fixtures);
* ``serve`` — run the long-lived multi-tenant query daemon (newline-
  delimited JSON frames over TCP, Prometheus metrics endpoint; see
  ``docs/operations.md`` for the runbook);
* ``list`` — list the bundled application queries;
* ``hardware`` — print the calibrated hardware spec;
* ``check`` — run the static project-invariant analyzer over a source
  tree (``repro check src/``; see ``docs/analysis.md``).

Examples::

    python -m repro list
    python -m repro run CM1 --tasks 16 --task-size 65536
    python -m repro run --cql "select timestamp, avg(value) as a \\
        from SmartGridStr [range 60 slide 10]" --workload smartgrid
    python -m repro record cluster events.jsonl --tuples 100000
    python -m repro replay events.jsonl CM1 --sink totals.jsonl
    python -m repro serve --port 7070 --metrics-port 9100 --stats 10
"""

from __future__ import annotations

import argparse
import dataclasses
import logging
import sys

from .api import SaberSession
from .core.engine import SaberConfig
from .hardware.slots import device_slots
from .hardware.specs import DEFAULT_SPEC
from .io import FileReplaySource, FileSink, write_batch
from .workloads import cluster, linearroad, smartgrid
from .workloads.queries import APPLICATION_QUERIES, build

#: ad-hoc CQL runs pick a source (and its stream name) per workload.
_WORKLOADS = {
    "cluster": ("TaskEvents", cluster.TASK_EVENTS_SCHEMA,
                lambda seed, rate: cluster.ClusterMonitoringSource(
                    seed=seed, tuples_per_second=rate)),
    "smartgrid": ("SmartGridStr", smartgrid.SMART_GRID_SCHEMA,
                  lambda seed, rate: smartgrid.SmartGridSource(
                      seed=seed, tuples_per_second=rate)),
    "linearroad": ("SegSpeedStr", linearroad.POS_SPEED_SCHEMA,
                   lambda seed, rate: linearroad.LinearRoadSource(
                       seed=seed, tuples_per_second=rate)),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SABER reproduction: hybrid window-based stream processing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a query on the hybrid engine")
    run.add_argument("query", nargs="?", help="application query name (e.g. CM1)")
    run.add_argument("--cql", help="ad-hoc CQL string instead of a named query")
    run.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="smartgrid",
        help="source workload for --cql runs",
    )
    run.add_argument("--tasks", type=int, default=32, help="tasks to process")
    run.add_argument(
        "--task-size", type=int, default=1 << 20, help="query task size phi in bytes"
    )
    run.add_argument("--workers", type=int, default=15, help="CPU worker threads")
    run.add_argument("--no-gpu", action="store_true", help="disable the GPGPU")
    run.add_argument(
        "--scheduler", choices=["hls", "fcfs"], default="hls",
        help="task scheduling policy",
    )
    run.add_argument(
        "--execution",
        choices=["sim", "threads", "processes", "accelerator", "hybrid"],
        default="sim",
        help="execution backend: virtual-time simulation, real threads, "
             "forked worker processes (shared memory, POSIX only), the "
             "executable batch-kernel accelerator alone, or hybrid "
             "(CPU threads + accelerator under HLS dispatch)",
    )
    run.add_argument(
        "--accelerator", action="store_true",
        help="shorthand for --execution hybrid: bring the executable "
             "accelerator up next to the CPU workers",
    )
    run.add_argument(
        "--fusion", choices=["auto", "off"], default="auto",
        help="query fusion: compile eligible operator chains into one "
             "single-pass kernel (auto) or run the unfused chain (off)",
    )
    run.add_argument("--seed", type=int, default=1, help="workload seed")
    run.add_argument(
        "--rate", type=int, default=256,
        help="source tuples per logical second (time-window density)",
    )
    run.add_argument(
        "--show-rows", type=int, default=5, help="result rows to print"
    )

    replay = sub.add_parser(
        "replay", help="replay a recorded JSONL/CSV stream file through a query"
    )
    replay.add_argument("input", help="stream file to replay (.jsonl or .csv)")
    replay.add_argument(
        "query", nargs="?", help="application query name (e.g. CM1)"
    )
    replay.add_argument("--cql", help="ad-hoc CQL string instead of a named query")
    replay.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default=None,
        help="workload whose stream name/schema the replayed file carries "
        "(--cql runs; default: cluster)",
    )
    replay.add_argument(
        "--format", choices=["jsonl", "csv"], default=None,
        help="input format (default: inferred from the file suffix)",
    )
    replay.add_argument(
        "--rate", type=float, default=None,
        help="paced replay: tuples per wall-clock second (default: unpaced)",
    )
    replay.add_argument(
        "--sink", help="write query output to this file (.jsonl or .csv)"
    )
    replay.add_argument(
        "--task-size", type=int, default=64 << 10,
        help="query task size phi in bytes",
    )
    replay.add_argument("--workers", type=int, default=4, help="CPU worker threads")
    replay.add_argument("--no-gpu", action="store_true", help="disable the GPGPU")
    replay.add_argument(
        "--execution",
        choices=["sim", "threads", "processes", "accelerator", "hybrid"],
        default="threads",
        help="execution backend (threads by default: replay is real I/O)",
    )
    replay.add_argument(
        "--backpressure", choices=["block", "error", "drop_oldest"],
        default="block", help="policy when the input buffers fill",
    )
    replay.add_argument(
        "--fusion", choices=["auto", "off"], default="auto",
        help="query fusion: fused single-pass kernels (auto) or the "
             "unfused operator chain (off)",
    )
    replay.add_argument(
        "--show-rows", type=int, default=5, help="result rows to print"
    )

    record = sub.add_parser(
        "record", help="record a bundled workload stream to a JSONL/CSV file"
    )
    record.add_argument("workload", choices=sorted(_WORKLOADS))
    record.add_argument("output", help="file to write (.jsonl or .csv)")
    record.add_argument(
        "--tuples", type=int, default=65536, help="number of tuples to record"
    )
    record.add_argument("--seed", type=int, default=1, help="workload seed")
    record.add_argument(
        "--rate", type=int, default=256,
        help="source tuples per logical second (time-window density)",
    )

    serve = sub.add_parser(
        "serve", help="run the long-lived multi-tenant query daemon"
    )
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port", type=int, default=7070,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help="Prometheus /metrics endpoint port (0 = ephemeral; "
             "omit to disable)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=64,
        help="distinct tenants admitted concurrently",
    )
    serve.add_argument(
        "--max-queries", type=int, default=8, help="queries per tenant"
    )
    serve.add_argument(
        "--max-streams", type=int, default=8, help="push streams per tenant"
    )
    serve.add_argument(
        "--buffer-tasks", type=int, default=96,
        help="per-tenant circular buffer capacity, in tasks per stream",
    )
    serve.add_argument(
        "--push-capacity", type=int, default=1 << 16,
        help="default ingress queue capacity per stream, in tuples",
    )
    serve.add_argument(
        "--backpressure", choices=["block", "error", "drop_oldest"],
        default="block",
        help="default ingress policy when a stream's queue fills "
             "(overridable per register frame)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="CPU workers per tenant session"
    )
    serve.add_argument(
        "--task-size", type=int, default=64 << 10,
        help="query task size phi in bytes (per tenant session)",
    )
    serve.add_argument(
        "--execution", choices=["threads", "processes"], default="threads",
        help="execution backend for tenant sessions",
    )
    serve.add_argument(
        "--stats", type=float, default=None, metavar="SECONDS",
        help="log a periodic statistics line every SECONDS",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="graceful-drain backstop per tenant on SIGTERM, in seconds",
    )
    serve.add_argument(
        "--tenant-idle-timeout", type=float, default=None, metavar="SECONDS",
        help="evict tenant sessions idle for SECONDS (drains their "
             "queries first; omit to keep idle tenants forever)",
    )

    cluster = sub.add_parser(
        "cluster",
        help="run a workload key-partitioned over N shard engines and "
             "check the merged output against a single engine",
    )
    cluster.add_argument(
        "--workload", choices=["GROUP-BY", "CM1"], default="GROUP-BY",
        help="cluster-eligible Table-1 workload",
    )
    cluster.add_argument(
        "--shards", type=int, default=2, help="shard engine count"
    )
    cluster.add_argument(
        "--transport", choices=["local", "serve"], default="local",
        help="shard transport: in-process engines or spawned "
             "'repro serve' daemons",
    )
    cluster.add_argument(
        "--execution", choices=["threads", "processes"], default="threads",
        help="engine backend inside each local shard",
    )
    cluster.add_argument(
        "--tuples", type=int, default=1 << 15,
        help="stream prefix length to process",
    )
    cluster.add_argument(
        "--workers", type=int, default=2, help="CPU workers per shard"
    )
    cluster.add_argument("--seed", type=int, default=1, help="workload seed")
    cluster.add_argument(
        "--kill-shard", type=int, default=None, metavar="SLOT",
        help="failure injection: kill shard SLOT mid-run and recover it",
    )
    cluster.add_argument(
        "--skip-check", action="store_true",
        help="skip the single-engine equivalence check",
    )

    sub.add_parser("list", help="list the bundled application queries")
    sub.add_parser("hardware", help="print the calibrated hardware spec")

    # ``check`` owns its argument parsing (repro.analysis.cli); the stub
    # here makes it show up in --help, while main() dispatches before
    # this parser ever sees its arguments.
    check = sub.add_parser(
        "check",
        help="static project-invariant analyzer (see docs/analysis.md)",
        add_help=False,
    )
    check.add_argument("args", nargs=argparse.REMAINDER)
    return parser


def _command_list() -> int:
    for name in APPLICATION_QUERIES:
        query, __ = build(name)
        profile = query.operator.cost_profile()
        windows = ", ".join(str(w) if w else "unbounded" for w in query.windows)
        print(f"{name:6s} kind={profile.kind:12s} windows=[{windows}]")
    return 0


def _command_hardware() -> int:
    for field in dataclasses.fields(DEFAULT_SPEC):
        print(f"{field.name:32s} {getattr(DEFAULT_SPEC, field.name)}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if bool(args.query) == bool(args.cql):
        print("error: pass either a query name or --cql", file=sys.stderr)
        return 2
    execution = args.execution
    if args.accelerator:
        if execution in ("processes",):
            print(
                "error: --accelerator runs on the thread substrate; "
                "drop --execution processes",
                file=sys.stderr,
            )
            return 2
        if args.no_gpu:
            print("error: --accelerator conflicts with --no-gpu", file=sys.stderr)
            return 2
        if execution in ("sim", "threads"):
            execution = "hybrid"
    config = SaberConfig(
        task_size_bytes=args.task_size,
        cpu_workers=args.workers,
        use_gpu=not args.no_gpu,
        scheduler=args.scheduler,
        execution=execution,
        fusion=args.fusion,
    )
    with SaberSession(config) as session:
        if args.cql:
            stream, __, make_source = _WORKLOADS[args.workload]
            session.register_stream(stream, make_source(args.seed, args.rate))
            handle = session.sql(args.cql, name="cli")
        else:
            query, sources = build(
                args.query, seed=args.seed, tuples_per_second=args.rate
            )
            handle = session.submit(query, sources=sources)
        query = handle.query
        if execution in ("accelerator", "hybrid"):
            slots = ", ".join(
                f"{s.processor}:{s.kind}x{s.workers}"
                for s in device_slots(config)
            )
            print(f"devices    : {slots}")
        report = session.run(tasks_per_query=args.tasks)
    clock = "virtual" if execution == "sim" else "wall-clock"
    print(f"query      : {query.name}")
    print(f"throughput : {report.throughput_bytes / 1e6:.1f} MB/s ({clock})")
    print(f"latency    : {report.latency_mean * 1e3:.2f} ms mean")
    shares = ", ".join(
        f"{p}={s:.0%}" for p, s in sorted(report.processor_share().items())
    )
    print(f"split      : {shares}")
    print(f"output     : {report.output_rows[query.name]} rows")
    output = report.outputs[query.name]
    if output is not None and len(output) and args.show_rows:
        print(f"first {min(args.show_rows, len(output))} rows:")
        for row in output.to_rows()[: args.show_rows]:
            print(f"  {row}")
    return 0


def _command_replay(args: argparse.Namespace) -> int:
    if bool(args.query) == bool(args.cql):
        print("error: pass either a query name or --cql", file=sys.stderr)
        return 2
    config = SaberConfig(
        task_size_bytes=args.task_size,
        cpu_workers=args.workers,
        use_gpu=not args.no_gpu,
        execution=args.execution,
        backpressure=args.backpressure,
        fusion=args.fusion,
        collect_output=True,
    )
    sink = FileSink(args.sink) if args.sink else None
    with SaberSession(config) as session:
        if args.cql:
            stream, schema, __ = _WORKLOADS[args.workload or "cluster"]
            session.register_stream(
                stream,
                FileReplaySource(
                    args.input, schema, format=args.format, rate=args.rate
                ),
            )
            handle = session.sql(args.cql, name="replay")
        else:
            query, __ = build(args.query)
            if query.arity != 1:
                print(
                    f"error: {args.query} takes {query.arity} input streams; "
                    "replay supports single-input queries",
                    file=sys.stderr,
                )
                return 2
            replay_source = FileReplaySource(
                args.input, query.input_schemas[0],
                format=args.format, rate=args.rate,
            )
            handle = session.submit(query, sources=[replay_source])
        if sink is not None:
            handle.add_sink(sink)
        query = handle.query
        # A replayed file is finite: run until end-of-stream completes
        # the query (EOS cuts dispatch short well before this budget).
        report = session.run(tasks_per_query=1 << 30)
    clock = "virtual" if args.execution == "sim" else "wall-clock"
    print(f"query      : {query.name}")
    print(f"replayed   : {args.input}")
    print(f"complete   : {handle.done}")
    print(f"throughput : {report.throughput_bytes / 1e6:.1f} MB/s ({clock})")
    print(f"output     : {handle.output_rows} rows")
    if sink is not None:
        print(f"sink       : {args.sink} ({sink.rows_written} rows)")
    output = handle.output()
    if output is not None and len(output) and args.show_rows:
        print(f"first {min(args.show_rows, len(output))} rows:")
        for row in output.to_rows()[: args.show_rows]:
            print(f"  {row}")
    return 0


def _command_record(args: argparse.Namespace) -> int:
    if args.tuples <= 0:
        print("error: --tuples must be positive", file=sys.stderr)
        return 2
    stream, __, make_source = _WORKLOADS[args.workload]
    source = make_source(args.seed, args.rate)
    write_batch(args.output, source.next_tuples(args.tuples))
    print(f"recorded {args.tuples} tuples of {stream} to {args.output}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported here: the serve layer is only needed by this subcommand.
    from .serve import SaberServer, ServeConfig, TenantQuotas

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(message)s"
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        max_sessions=args.max_sessions,
        quotas=TenantQuotas(
            max_queries=args.max_queries,
            max_streams=args.max_streams,
            buffer_capacity_tasks=args.buffer_tasks,
            push_capacity_tuples=args.push_capacity,
            backpressure=args.backpressure,
            cpu_workers=args.workers,
            task_size_bytes=args.task_size,
        ),
        execution=args.execution,
        stats_interval=args.stats,
        drain_timeout=args.drain_timeout,
        tenant_idle_timeout=args.tenant_idle_timeout,
    )
    server = SaberServer(config).start()
    host, port = server.address
    print(f"listening on {host}:{port}", flush=True)
    metrics = server.metrics_address
    if metrics is not None:
        print(f"metrics on http://{metrics[0]}:{metrics[1]}/metrics", flush=True)
    server.install_signal_handlers()
    server.serve_forever()   # returns after a SIGTERM/SIGINT drain
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    # Imported here: the cluster layer is only needed by this subcommand.
    from .cluster import (
        CLUSTER_WORKLOADS,
        materialise,
        reference_output,
        run_cluster,
    )

    workload = CLUSTER_WORKLOADS[args.workload]
    data = materialise(workload, args.tuples, seed=args.seed)
    merged, stats = run_cluster(
        workload,
        data,
        kill_slot=args.kill_shard,
        shards=args.shards,
        transport=args.transport,
        execution=args.execution,
        cpu_workers=args.workers,
    )
    merge = stats["merge"] or {}
    print(
        f"{workload.name}: {args.tuples} tuples over {args.shards} "
        f"{args.transport} shard(s), {merge.get('merged_windows', 0)} "
        f"windows / {merge.get('merged_rows', 0)} rows merged, "
        f"{int(stats['resubmits'])} resubmit(s)"
    )
    if args.skip_check:
        return 0
    reference = reference_output(workload, data, cpu_workers=args.workers)
    ref_bytes = reference.to_bytes() if reference is not None else b""
    out_bytes = merged.to_bytes() if merged is not None else b""
    if ref_bytes == out_bytes:
        print("merged output is byte-identical to the single-engine run")
        return 0
    print(
        "MISMATCH: merged output differs from the single-engine run "
        f"({len(out_bytes)} vs {len(ref_bytes)} bytes)"
    )
    return 1


def main(argv: "list[str] | None" = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "check":
        # Imported lazily: the analyzer is pure stdlib and must stay
        # importable without the engine's numpy dependency tree.
        from .analysis.cli import main as _check_main

        return _check_main(list(argv[1:]))
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "hardware":
        return _command_hardware()
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "record":
        return _command_record(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "cluster":
        return _command_cluster(args)
    return _command_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
