"""Command-line interface: ``python -m repro``.

Subcommands:

* ``run`` — execute a named application query (Table 1) or an ad-hoc CQL
  string over one of the bundled workloads and print a run report;
* ``list`` — list the bundled application queries;
* ``hardware`` — print the calibrated hardware specification.

Examples::

    python -m repro list
    python -m repro run CM1 --tasks 16 --task-size 65536
    python -m repro run --cql "select timestamp, avg(value) as a \\
        from SmartGridStr [range 60 slide 10]" --workload smartgrid
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .api import SaberSession
from .core.engine import SaberConfig
from .hardware.specs import DEFAULT_SPEC
from .workloads import cluster, linearroad, smartgrid
from .workloads.queries import APPLICATION_QUERIES, build

#: ad-hoc CQL runs pick a source (and its stream name) per workload.
_WORKLOADS = {
    "cluster": ("TaskEvents", cluster.TASK_EVENTS_SCHEMA,
                lambda seed, rate: cluster.ClusterMonitoringSource(
                    seed=seed, tuples_per_second=rate)),
    "smartgrid": ("SmartGridStr", smartgrid.SMART_GRID_SCHEMA,
                  lambda seed, rate: smartgrid.SmartGridSource(
                      seed=seed, tuples_per_second=rate)),
    "linearroad": ("SegSpeedStr", linearroad.POS_SPEED_SCHEMA,
                   lambda seed, rate: linearroad.LinearRoadSource(
                       seed=seed, tuples_per_second=rate)),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SABER reproduction: hybrid window-based stream processing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a query on the hybrid engine")
    run.add_argument("query", nargs="?", help="application query name (e.g. CM1)")
    run.add_argument("--cql", help="ad-hoc CQL string instead of a named query")
    run.add_argument(
        "--workload", choices=sorted(_WORKLOADS), default="smartgrid",
        help="source workload for --cql runs",
    )
    run.add_argument("--tasks", type=int, default=32, help="tasks to process")
    run.add_argument(
        "--task-size", type=int, default=1 << 20, help="query task size phi in bytes"
    )
    run.add_argument("--workers", type=int, default=15, help="CPU worker threads")
    run.add_argument("--no-gpu", action="store_true", help="disable the GPGPU")
    run.add_argument(
        "--scheduler", choices=["hls", "fcfs"], default="hls",
        help="task scheduling policy",
    )
    run.add_argument(
        "--execution", choices=["sim", "threads"], default="sim",
        help="execution backend: virtual-time simulation or real threads",
    )
    run.add_argument("--seed", type=int, default=1, help="workload seed")
    run.add_argument(
        "--rate", type=int, default=256,
        help="source tuples per logical second (time-window density)",
    )
    run.add_argument(
        "--show-rows", type=int, default=5, help="result rows to print"
    )

    sub.add_parser("list", help="list the bundled application queries")
    sub.add_parser("hardware", help="print the calibrated hardware spec")
    return parser


def _command_list() -> int:
    for name in APPLICATION_QUERIES:
        query, __ = build(name)
        profile = query.operator.cost_profile()
        windows = ", ".join(str(w) if w else "unbounded" for w in query.windows)
        print(f"{name:6s} kind={profile.kind:12s} windows=[{windows}]")
    return 0


def _command_hardware() -> int:
    for field in dataclasses.fields(DEFAULT_SPEC):
        print(f"{field.name:32s} {getattr(DEFAULT_SPEC, field.name)}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if bool(args.query) == bool(args.cql):
        print("error: pass either a query name or --cql", file=sys.stderr)
        return 2
    config = SaberConfig(
        task_size_bytes=args.task_size,
        cpu_workers=args.workers,
        use_gpu=not args.no_gpu,
        scheduler=args.scheduler,
        execution=args.execution,
    )
    with SaberSession(config) as session:
        if args.cql:
            stream, __, make_source = _WORKLOADS[args.workload]
            session.register_stream(stream, make_source(args.seed, args.rate))
            handle = session.sql(args.cql, name="cli")
        else:
            query, sources = build(
                args.query, seed=args.seed, tuples_per_second=args.rate
            )
            handle = session.submit(query, sources=sources)
        query = handle.query
        report = session.run(tasks_per_query=args.tasks)
    clock = "virtual" if args.execution == "sim" else "wall-clock"
    print(f"query      : {query.name}")
    print(f"throughput : {report.throughput_bytes / 1e6:.1f} MB/s ({clock})")
    print(f"latency    : {report.latency_mean * 1e3:.2f} ms mean")
    shares = ", ".join(
        f"{p}={s:.0%}" for p, s in sorted(report.processor_share().items())
    )
    print(f"split      : {shares}")
    print(f"output     : {report.output_rows[query.name]} rows")
    output = report.outputs[query.name]
    if output is not None and len(output) and args.show_rows:
        print(f"first {min(args.show_rows, len(output))} rows:")
        for row in output.to_rows()[: args.show_rows]:
            print(f"  {row}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "hardware":
        return _command_hardware()
    return _command_run(args)


if __name__ == "__main__":
    raise SystemExit(main())
