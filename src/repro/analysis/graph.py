"""A tiny directed-graph model shared by the static and runtime halves.

Nodes are lock *names* (``"core.executor.ThreadedExecutor._mutex"``),
not lock instances: like the kernel's lockdep, ordering is validated
per lock **class** (creation site), so every ``_Instrument._lock`` is
one node regardless of how many instruments exist.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Edge:
    """A directed ``src is held while dst is acquired`` observation."""

    src: str
    dst: str
    via: str

    def pair(self) -> tuple[str, str]:
        """The (src, dst) key, dropping the provenance label."""
        return (self.src, self.dst)


class LockOrderGraph:
    """Directed graph of lock-acquisition order with provenance labels."""

    def __init__(self) -> None:
        self._edges: dict[tuple[str, str], list[str]] = {}
        self._nodes: set[str] = set()

    def add_node(self, name: str) -> None:
        """Register a lock even if no edge touches it."""
        self._nodes.add(name)

    def add_edge(self, src: str, dst: str, via: str) -> None:
        """Record that ``dst`` was (or may be) acquired while ``src`` is held."""
        if src == dst:
            return
        self._nodes.add(src)
        self._nodes.add(dst)
        self._edges.setdefault((src, dst), []).append(via)

    @property
    def nodes(self) -> set[str]:
        """All known lock names."""
        return set(self._nodes)

    def edges(self) -> list[Edge]:
        """All edges, one per (src, dst) pair, first provenance label wins."""
        return [Edge(src, dst, vias[0]) for (src, dst), vias in sorted(self._edges.items())]

    def edge_pairs(self) -> set[tuple[str, str]]:
        """The (src, dst) pair set, for set algebra against runtime data."""
        return set(self._edges)

    def provenance(self, src: str, dst: str) -> list[str]:
        """Every recorded reason for the (src, dst) edge."""
        return list(self._edges.get((src, dst), []))

    def find_cycle(self) -> "list[str] | None":
        """Return one cycle as a node path ``[a, b, ..., a]``, or ``None``.

        Iterative three-colour DFS so deep graphs cannot overflow the
        interpreter stack.
        """
        adjacency: dict[str, list[str]] = {node: [] for node in self._nodes}
        for src, dst in self._edges:
            adjacency[src].append(dst)
        for neighbours in adjacency.values():
            neighbours.sort()

        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in self._nodes}
        parent: dict[str, str] = {}
        for root in sorted(self._nodes):
            if colour[root] != WHITE:
                continue
            stack: list[tuple[str, int]] = [(root, 0)]
            colour[root] = GREY
            while stack:
                node, index = stack[-1]
                if index < len(adjacency[node]):
                    stack[-1] = (node, index + 1)
                    nxt = adjacency[node][index]
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, 0))
                    elif colour[nxt] == GREY:
                        cycle = [nxt]
                        cursor = node
                        while cursor != nxt:
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.append(nxt)
                        cycle.reverse()
                        return cycle
                else:
                    colour[node] = BLACK
                    stack.pop()
        return None
