"""Rule framework: findings, the rule registry, and the project config.

A rule is a small class with a ``name``, a one-line ``description`` of
the invariant it guards, and a ``check(project, config)`` method that
returns :class:`Finding` objects.  Rules register themselves with
:func:`register` so the CLI and tests can enumerate them.

Findings are suppressed two ways (see ``docs/analysis.md``):

* inline — a ``# repro: allow(<rule>) -- <reason>`` comment on the
  flagged line or the line directly above it;
* baseline — a committed JSON file keyed by stable fingerprints
  (:mod:`repro.analysis.baseline`), so the gate is strict on new code
  while legacy findings carry a written justification.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .project import Project


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: ignores line numbers so
        unrelated edits don't invalidate suppressions."""
        basis = "|".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        """``path:line: rule: message`` — the CLI's text format."""
        location = f"{self.path}:{self.line}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule}:{symbol} {self.message}"


@dataclass(frozen=True)
class DeclaredEdge:
    """A lock-order edge the analyzer cannot see statically.

    The engine wires several cross-component calls through callable
    attributes (``on_release``, ``on_emit``, result sinks); each such
    hook that acquires a lock while another is held is declared here
    with a written justification, reviewed like code.
    """

    src: str
    dst: str
    reason: str


@dataclass(frozen=True)
class AnalysisConfig:
    """Project-specific knowledge the generic rules are parameterised by.

    Tests build small custom configs around fixture trees; the real
    tree uses :data:`DEFAULT_CONFIG`.
    """

    #: Module prefixes where every lock must be created via
    #: ``make_lock``/``make_condition`` with its canonical name.
    lock_modules: tuple[str, ...] = ()
    #: Documented lock ranking, outermost (acquired first) to innermost.
    lock_order: tuple[str, ...] = ()
    #: Lock-order edges exercised only through dynamic dispatch.
    declared_edges: tuple[DeclaredEdge, ...] = ()
    #: Fully qualified functions on the per-task hot path.
    hot_functions: tuple[str, ...] = ()
    #: Module names (dotted, no trailing dot) allowed to mutate
    #: head/tail pointers and call buffer mutators.
    single_writer_buffer_modules: tuple[str, ...] = ()
    #: Module names additionally allowed to *call* buffer mutators and
    #: cut tasks (the dispatching layer).
    single_writer_dispatch_modules: tuple[str, ...] = ()
    #: Module prefixes scanned for metric registrations.
    metrics_modules: tuple[str, ...] = ()
    #: Docs file (relative to the docs dir) that must catalogue every
    #: registered metric series; ``None`` disables the docs check.
    metrics_catalogue: "str | None" = None
    #: Module prefixes that must carry complete annotations.
    annotation_modules: tuple[str, ...] = ()

    def in_lock_scope(self, module: str) -> bool:
        """Whether ``module`` is under the lock-discipline scope."""
        return _prefixed(module, self.lock_modules)

    def in_metrics_scope(self, module: str) -> bool:
        """Whether ``module`` is scanned for metric registrations."""
        return _prefixed(module, self.metrics_modules)

    def in_annotation_scope(self, module: str) -> bool:
        """Whether ``module`` must be fully annotated."""
        return _prefixed(module, self.annotation_modules)


def _prefixed(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class Rule:
    """Base class for static rules; subclasses set ``name``/``description``."""

    name = "rule"
    description = ""

    def check(self, project: "Project", config: AnalysisConfig) -> list[Finding]:
        """Return every violation of this rule in ``project``."""
        raise NotImplementedError


#: name -> rule class, in registration order.
RULE_REGISTRY: "dict[str, type[Rule]]" = {}


def register(cls: "type[Rule]") -> "type[Rule]":
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    RULE_REGISTRY[cls.name] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule (importing the rule modules)."""
    from . import rules  # noqa: F401  (registration side effect)

    return [cls() for cls in RULE_REGISTRY.values()]


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([a-z0-9_\-, ]+)\)")


def inline_suppressions(source_lines: list[str]) -> "dict[int, set[str]]":
    """Map 1-based line numbers to the rule names allowed on them.

    An ``# repro: allow(rule)`` comment covers its own line and the
    line below it, so it can sit on the flagged statement or ride
    alone directly above.
    """
    allowed: dict[int, set[str]] = {}
    for index, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
        allowed.setdefault(index, set()).update(rules)
        allowed.setdefault(index + 1, set()).update(rules)
    return allowed


# ---------------------------------------------------------------------------
# The real tree's configuration.  Every name below is load-bearing: the
# lock-order rule checks make_lock call sites against these node names,
# lockdep records runtime edges under them, and docs/analysis.md
# documents the ranking.
# ---------------------------------------------------------------------------

LOCK_ORDER: tuple[str, ...] = (
    "cluster.session.ClusterSession._lock",
    "serve.server.SaberServer._lock",
    "serve.tenants.Tenant._lock",
    "cluster.coordinator.ClusterCoordinator._lock",
    "api.session.SaberSession._lock",
    "core.executor.ThreadedExecutor._mutex",
    "core.result_stage.ResultStage._lock",
    "api.session.QueryHandle._cond",
    "serve.tenants._ResultQueue._cond",
    "cluster.merge.MergeStage._cond",
    "io.push.PushSource._cond",
    "relational.buffer.CircularTupleBuffer._lock",
    "core.scheduler.ThroughputMatrix._lock",
    "sim.measurements.Measurements._lock",
    "serve.metrics.MetricsRegistry._lock",
    "serve.metrics._Instrument._lock",
)

DECLARED_EDGES: tuple[DeclaredEdge, ...] = (
    DeclaredEdge(
        "core.result_stage.ResultStage._lock",
        "relational.buffer.CircularTupleBuffer._lock",
        "ResultStage.submit holds its lock through on_release, which is "
        "wired to Dispatcher.release -> CircularTupleBuffer.release.",
    ),
    DeclaredEdge(
        "core.result_stage.ResultStage._lock",
        "api.session.QueryHandle._cond",
        "on_emit is wired to QueryHandle._on_emit, which appends the "
        "chunk under the handle's condition.",
    ),
    DeclaredEdge(
        "core.result_stage.ResultStage._lock",
        "serve.tenants._ResultQueue._cond",
        "Tenant result sinks run inside the result stage's emit path "
        "and append to the tenant backlog queue.",
    ),
    DeclaredEdge(
        "core.result_stage.ResultStage._lock",
        "serve.metrics._Instrument._lock",
        "on_metrics is wired to SessionInstruments hooks (counter "
        "inc/observe) and Tenant._on_chunk counts backlog drops.",
    ),
    DeclaredEdge(
        "api.session.SaberSession._lock",
        "serve.metrics._Instrument._lock",
        "SaberSession._register runs engine.add_query under the session "
        "lock; with serve metrics attached, wire_run sets gauge "
        "callbacks (Gauge.set_function locks the instrument).",
    ),
    DeclaredEdge(
        "serve.server.SaberServer._lock",
        "serve.metrics.MetricsRegistry._lock",
        "SaberServer.admit constructs the Tenant (and its "
        "SessionInstruments) under the server lock; instrument "
        "registration locks the registry.",
    ),
    DeclaredEdge(
        "serve.server.SaberServer._lock",
        "serve.metrics._Instrument._lock",
        "Tenant construction under the server lock installs gauge "
        "callbacks via Gauge.set_function.",
    ),
    DeclaredEdge(
        "core.result_stage.ResultStage._lock",
        "cluster.merge.MergeStage._cond",
        "Shard window sinks (ResultStage.on_window) are wired to "
        "MergeStage.on_window, which records the report under the merge "
        "condition.",
    ),
    DeclaredEdge(
        "cluster.merge.MergeStage._cond",
        "serve.metrics._Instrument._lock",
        "MergeStage._advance fires on_emit under the merge condition; "
        "the coordinator's hook counts merged windows/rows on cluster "
        "metrics instruments.",
    ),
    DeclaredEdge(
        "cluster.session.ClusterSession._lock",
        "serve.metrics._Instrument._lock",
        "ClusterSession.sql runs ClusterCoordinator.submit under the "
        "session lock; submit installs merge-lag gauge callbacks via "
        "Gauge.set_function.",
    ),
    DeclaredEdge(
        "serve.tenants.Tenant._lock",
        "io.push.PushSource._cond",
        "Tenant.stats snapshots per-stream queue depth while holding "
        "the tenant lock; PushSource.queued_tuples locks the ingress "
        "condition.  (The static pass cannot type the comprehension "
        "variable iterating Tenant._streams.)",
    ),
)

HOT_FUNCTIONS: tuple[str, ...] = (
    # Executor task loops (threads + processes backends).
    "core.executor.ThreadedExecutor._dispatch_loop",
    "core.executor.ThreadedExecutor._worker_loop",
    "core.executor.ThreadedExecutor._claim",
    "core.executor.ThreadedExecutor._execute",
    "core.executor_mp.ProcessExecutor._feed",
    "core.executor_mp.ProcessExecutor._handle_completion",
    "core.executor_mp.ProcessExecutor._worker_main",
    # Single-writer dispatch and the circular buffers it feeds.
    "core.dispatcher.Dispatcher.create_task",
    "core.dispatcher.Dispatcher._pull_staged",
    "relational.buffer.CircularTupleBuffer.insert",
    "relational.buffer.CircularTupleBuffer.read",
    "relational.buffer.CircularTupleBuffer.release",
    # Fused single-pass kernels.
    "core.fusion.FusedKernel.process_batch",
    "core.fusion.FusedKernel.merge_partials",
    "core.fusion.FusedKernel.finalize_window",
    # Result stage (in-order drain, per-window finalisation, emit).
    "core.result_stage.ResultStage.submit",
    "core.result_stage.ResultStage._process",
    "core.result_stage.ResultStage._emit",
    # Per-task metrics hooks fire once per task/emit on the hot path.
    "serve.metrics.SessionInstruments._on_task",
    "serve.metrics.SessionInstruments._on_task_cut",
    "serve.metrics.SessionInstruments._on_emit",
    "serve.metrics.Counter.inc",
    "serve.metrics.Gauge.add",
    "serve.metrics.Histogram.observe",
)

DEFAULT_CONFIG = AnalysisConfig(
    lock_modules=(
        "core",
        "serve",
        "cluster",
        "relational.buffer",
        "api.session",
        "io.push",
        "sim.measurements",
    ),
    lock_order=LOCK_ORDER,
    declared_edges=DECLARED_EDGES,
    hot_functions=HOT_FUNCTIONS,
    single_writer_buffer_modules=("relational.buffer",),
    single_writer_dispatch_modules=(
        "core.dispatcher",
        "core.engine",
        "core.executor",
        "core.executor_mp",
    ),
    metrics_modules=("serve", "cluster"),
    metrics_catalogue="operations.md",
    annotation_modules=("analysis", "serve.protocol"),
)


#: Signature every rule's check method satisfies (used by the CLI).
CheckFn = Callable[["Project", AnalysisConfig], "list[Finding]"]


@dataclass
class CheckResult:
    """Aggregated outcome of running a rule set over a project."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding remains."""
        return not self.findings
