"""Lockdep-style runtime lock-order validation (``REPRO_LOCKDEP=1``).

Every lock the engine's concurrent layers create goes through
:func:`make_lock` / :func:`make_condition` with a stable *lock-class*
name (``"core.executor.ThreadedExecutor._mutex"`` — the same node names
the static analyzer derives).  Normally these are plain ``threading``
factories with zero overhead; with ``REPRO_LOCKDEP=1`` in the
environment they return tracked wrappers that record, per thread, which
lock classes were held when each lock was acquired.

The recorded edge set is then checked against the static
lock-acquisition graph (:mod:`repro.analysis.locks`):

* a cycle in the observed edges is a real deadlock hazard — fail;
* an observed edge the static graph does not know about means the
  analyzer (or its declared-dynamic-edge list) is stale — fail;
* a static edge never observed is reported as *unexercised* coverage.

Like the kernel's lockdep, validation is per lock class, not per
instance, and only threads in the recording process are tracked —
forked worker processes validate their own (trivial) acquisition
history, while the parent covers the dispatcher/result-stage/serve
locks where ordering actually matters.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable

from .graph import LockOrderGraph

__all__ = [
    "ENV_FLAG",
    "LockdepRegistry",
    "LockdepReport",
    "REGISTRY",
    "TrackedLock",
    "enabled",
    "make_condition",
    "make_lock",
    "verify",
]

#: Environment variable that switches the tracked implementations on.
ENV_FLAG = "REPRO_LOCKDEP"


def enabled() -> bool:
    """True when lockdep instrumentation is switched on via the environment."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


class LockdepRegistry:
    """Process-wide recorder of per-thread lock acquisition order.

    Threads keep a thread-local stack of held lock names; acquiring
    lock ``B`` while ``A`` is held records the directed edge
    ``A -> B``.  The shared edge map is guarded by an internal meta
    lock that is itself never tracked.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()
        self._local = threading.local()
        self._edges: dict[tuple[str, str], int] = {}
        self._acquisitions: dict[str, int] = {}

    def _held(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_acquire(self, name: str) -> None:
        """Record that the calling thread acquired lock class ``name``."""
        held = self._held()
        with self._meta:
            self._acquisitions[name] = self._acquisitions.get(name, 0) + 1
            for outer in set(held):
                if outer != name:
                    edge = (outer, name)
                    self._edges[edge] = self._edges.get(edge, 0) + 1
        held.append(name)

    def note_release(self, name: str) -> None:
        """Record that the calling thread released lock class ``name``."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def held_names(self) -> tuple[str, ...]:
        """Lock classes the calling thread currently holds (oldest first)."""
        return tuple(self._held())

    def edges(self) -> set[tuple[str, str]]:
        """The observed ``(outer, inner)`` edge set across all threads."""
        with self._meta:
            return set(self._edges)

    def edge_counts(self) -> dict[tuple[str, str], int]:
        """Observed edges with how often each was exercised."""
        with self._meta:
            return dict(self._edges)

    def acquisition_counts(self) -> dict[str, int]:
        """Total acquisitions per lock class."""
        with self._meta:
            return dict(self._acquisitions)

    def reset(self) -> None:
        """Drop all recorded edges and counts (the calling thread's stack too)."""
        with self._meta:
            self._edges.clear()
            self._acquisitions.clear()
        self._local.stack = []


#: The process-wide registry every tracked lock reports to.
REGISTRY = LockdepRegistry()


class TrackedLock:
    """A ``threading.Lock`` wrapper that reports to :data:`REGISTRY`.

    Also serves as the backing lock for tracked ``Condition`` objects:
    ``Condition.wait`` releases and re-acquires through ``release`` /
    ``acquire``, so the held-stack stays truthful across waits.
    """

    def __init__(self, name: str, registry: "LockdepRegistry | None" = None) -> None:
        self.name = name
        self._registry = registry if registry is not None else REGISTRY
        self._inner = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock, recording the edge on success."""
        if blocking:
            got = self._inner.acquire(True, timeout)
        else:
            got = self._inner.acquire(False)
        if got:
            self._registry.note_acquire(self.name)
        return got

    def release(self) -> None:
        """Release the underlying lock and pop it from the held stack."""
        self._inner.release()
        self._registry.note_release(self.name)

    def locked(self) -> bool:
        """Whether the underlying lock is currently held by any thread."""
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<TrackedLock {self.name!r} locked={self._inner.locked()}>"


def make_lock(name: str) -> Any:
    """Create the engine's standard mutex for lock class ``name``.

    Returns a plain ``threading.Lock`` unless ``REPRO_LOCKDEP=1``, in
    which case a :class:`TrackedLock` records acquisition order under
    the given name.  ``name`` must match the static analyzer's node
    name for the creation site: ``<module>.<Class>.<attr>`` with the
    leading ``repro.`` dropped (the lock-order rule enforces this).
    """
    if enabled():
        return TrackedLock(name)
    return threading.Lock()


def make_condition(name: str, lock: Any = None) -> threading.Condition:
    """Create a condition variable for lock class ``name``.

    When ``lock`` is given the condition shares it (and its lock class
    — pass the owning lock's name).  Otherwise the condition gets its
    own mutex, tracked under ``name`` when lockdep is enabled.  The
    engine's conditions are never re-entered, so a non-reentrant
    backing lock is safe and keeps wait/notify accounting exact.
    """
    if lock is not None:
        return threading.Condition(lock)
    if enabled():
        return threading.Condition(TrackedLock(name))
    return threading.Condition()


@dataclass
class LockdepReport:
    """Outcome of checking observed acquisition order against the static graph."""

    observed: dict[tuple[str, str], int]
    acquisitions: dict[str, int]
    cycle: "list[str] | None"
    undeclared: list[tuple[str, str]]
    unexercised: list[tuple[str, str]]
    allowed: set[tuple[str, str]] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True when no cycle was observed and every edge was declared."""
        return self.cycle is None and not self.undeclared

    def summary(self) -> str:
        """A short human-readable verdict."""
        if self.ok:
            return (
                f"lockdep ok: {len(self.observed)} edges observed, "
                f"{len(self.unexercised)} static edges unexercised"
            )
        parts = []
        if self.cycle is not None:
            parts.append("cycle: " + " -> ".join(self.cycle))
        for src, dst in self.undeclared:
            parts.append(f"undeclared edge: {src} -> {dst}")
        return "lockdep FAILED: " + "; ".join(parts)

    def to_json(self) -> str:
        """Serialise the report (edges as ``src -> dst`` strings)."""
        payload: dict[str, Any] = {
            "ok": self.ok,
            "observed_edges": {
                f"{src} -> {dst}": count for (src, dst), count in sorted(self.observed.items())
            },
            "acquisitions": dict(sorted(self.acquisitions.items())),
            "cycle": self.cycle,
            "undeclared_edges": [f"{src} -> {dst}" for src, dst in self.undeclared],
            "unexercised_edges": [f"{src} -> {dst}" for src, dst in self.unexercised],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def verify(
    observed: dict[tuple[str, str], int],
    allowed: Iterable[tuple[str, str]],
    acquisitions: "dict[str, int] | None" = None,
) -> LockdepReport:
    """Check observed runtime edges against the allowed static edge set.

    ``allowed`` is the static graph's edge pairs (lexical + declared
    dynamic edges).  The observed edges are additionally checked for
    cycles on their own — even a fully declared edge set must be
    acyclic to rule out deadlock.
    """
    allowed_set = set(allowed)
    graph = LockOrderGraph()
    for src, dst in observed:
        graph.add_edge(src, dst, "runtime")
    undeclared = sorted(edge for edge in observed if edge not in allowed_set)
    unexercised = sorted(edge for edge in allowed_set if edge not in observed)
    return LockdepReport(
        observed=dict(observed),
        acquisitions=dict(acquisitions or {}),
        cycle=graph.find_cycle(),
        undeclared=undeclared,
        unexercised=unexercised,
        allowed=allowed_set,
    )
