"""Committed suppression baseline for ``repro check``.

The baseline is a JSON file keyed by finding fingerprints (stable
across line-number drift), each entry carrying a written justification.
The gate is strict on new code: a finding not in the baseline fails the
check, and baseline entries that no longer match anything are reported
so the file cannot accumulate dead weight.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .base import Finding

__all__ = ["Baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> suppression entry (rule/path/message/reason)."""

    path: "Path | None" = None
    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls(path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            entry["fingerprint"]: {
                "rule": str(entry.get("rule", "")),
                "path": str(entry.get("path", "")),
                "message": str(entry.get("message", "")),
                "reason": str(entry.get("reason", "")),
            }
            for entry in payload.get("suppressions", [])
        }
        return cls(path=path, entries=entries)

    def matches(self, finding: Finding) -> bool:
        """Whether the finding is suppressed by this baseline."""
        return finding.fingerprint in self.entries

    def unused(self, findings: "list[Finding]") -> list[str]:
        """Baseline fingerprints that matched nothing this run."""
        seen = {finding.fingerprint for finding in findings}
        return sorted(fp for fp in self.entries if fp not in seen)

    def write(self, path: Path, findings: "list[Finding]") -> None:
        """Write a baseline suppressing exactly ``findings``.

        Existing entries keep their justification; new entries get a
        placeholder reason that reviewers must replace.
        """
        suppressions = []
        for finding in sorted(findings, key=lambda f: (f.rule, f.path, f.line)):
            previous = self.entries.get(finding.fingerprint, {})
            suppressions.append(
                {
                    "fingerprint": finding.fingerprint,
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                    "reason": previous.get("reason") or "TODO: justify this suppression",
                }
            )
        payload = {"version": _VERSION, "suppressions": suppressions}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
