"""Rule: the lock-acquisition graph must be acyclic and match the
documented order, and scoped modules must create locks through the
named ``make_lock``/``make_condition`` factories."""

from __future__ import annotations

from ..base import AnalysisConfig, Finding, Rule, register
from ..locks import build_lock_graph, build_lock_model
from ..project import Project

__all__ = ["LockOrderRule"]


@register
class LockOrderRule(Rule):
    """Deadlock-freedom: no cycles, documented ranking, named factories."""

    name = "lock-order"
    description = (
        "The static lock-acquisition graph (with/acquire nesting plus "
        "declared dynamic edges) must be acyclic and consistent with "
        "the documented lock ranking; locks in scoped modules must be "
        "created via make_lock/make_condition under their canonical "
        "node name so runtime lockdep can match them."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Check factory discipline, graph acyclicity, and the ranking."""
        findings: list[Finding] = []
        model = build_lock_model(project)

        for site in model.sites:
            if not config.in_lock_scope(site.module):
                continue
            path = str(project.modules[site.module].path)
            symbol = site.node_name
            if not site.via_factory:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=site.lineno,
                        symbol=symbol,
                        message=(
                            "lock created with raw threading primitives; use "
                            "make_lock()/make_condition() from repro.analysis.lockdep "
                            "so runtime lock-order validation can track it"
                        ),
                    )
                )
                continue
            expected = site.aliases or (
                f"{site.class_key}.{site.attr}" if site.class_key else site.node_name
            )
            if site.declared_name is None:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=site.lineno,
                        symbol=symbol,
                        message=(
                            "make_lock/make_condition needs a literal lock-class "
                            f"name (expected {expected!r})"
                        ),
                    )
                )
            elif site.declared_name != expected:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=path,
                        line=site.lineno,
                        symbol=symbol,
                        message=(
                            f"lock-class name {site.declared_name!r} does not match "
                            f"the canonical node name {expected!r}"
                        ),
                    )
                )

        graph = build_lock_graph(project, config, model)
        cycle = graph.find_cycle()
        if cycle is not None:
            detail = " -> ".join(cycle)
            via = graph.provenance(cycle[0], cycle[1]) if len(cycle) > 1 else []
            findings.append(
                Finding(
                    rule=self.name,
                    path="<lock-graph>",
                    line=0,
                    symbol=cycle[0],
                    message=(
                        f"lock-order cycle: {detail}"
                        + (f" (first edge via {via[0]})" if via else "")
                    ),
                )
            )

        if config.lock_order:
            rank = {name: index for index, name in enumerate(config.lock_order)}
            for edge in graph.edges():
                src_rank = rank.get(edge.src)
                dst_rank = rank.get(edge.dst)
                if src_rank is not None and dst_rank is not None and src_rank > dst_rank:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path="<lock-graph>",
                            line=0,
                            symbol=f"{edge.src} -> {edge.dst}",
                            message=(
                                f"edge {edge.src} -> {edge.dst} (via {edge.via}) "
                                "contradicts the documented lock ranking"
                            ),
                        )
                    )
            for site in model.sites:
                if (
                    config.in_lock_scope(site.module)
                    and site.via_factory
                    and site.aliases is None
                    and site.node_name not in rank
                ):
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=str(project.modules[site.module].path),
                            line=site.lineno,
                            symbol=site.node_name,
                            message=(
                                f"lock {site.node_name!r} is not in the documented "
                                "lock ranking (base.LOCK_ORDER / docs/analysis.md)"
                            ),
                        )
                    )
        return findings
