"""Rule: metrics coherence — every registered series is written
somewhere and documented in the operations catalogue (and the
catalogue names only real series)."""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from ..base import AnalysisConfig, Finding, Rule, register
from ..project import Project

__all__ = ["MetricsCoherenceRule"]

#: Registration methods on the metrics registry.
_REGISTER_METHODS = ("counter", "gauge", "histogram")
#: Instrument methods that count as a write (increment/observe) site.
_WRITE_METHODS = ("inc", "add", "set", "observe", "set_function")
#: Series names in code and docs follow the Prometheus convention.
_SERIES_RE = re.compile(r"\bsaber_[a-z0-9_]+\b")


@dataclass
class _Series:
    """One registered metric series and what we know about it."""

    name: str
    path: str
    line: int
    attrs: set[str] = field(default_factory=set)
    chained_write: bool = False


@register
class MetricsCoherenceRule(Rule):
    """No dead or undocumented metric series."""

    name = "metrics-coherence"
    description = (
        "Every series registered via registry.counter/gauge/histogram "
        "must have at least one inc/add/set/observe/set_function site, "
        "and must appear in the docs metric catalogue; the catalogue "
        "must not name series that are never registered."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Cross-reference registrations, write sites, and the docs."""
        series: dict[str, _Series] = {}
        write_attrs: set[str] = set()

        for mod in project.modules.values():
            scan_registrations = config.in_metrics_scope(mod.name)
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                attr = node.func.attr
                if (
                    scan_registrations
                    and attr in _REGISTER_METHODS
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    name = node.args[0].value
                    entry = series.setdefault(
                        name, _Series(name=name, path=str(mod.path), line=node.lineno)
                    )
                    # self.attr = registry.counter("name", ...) binds the
                    # series to an attribute we can match write sites on.
                    parent = _assign_target_attr(mod.tree, node)
                    if parent is not None:
                        entry.attrs.add(parent)
                elif attr in _WRITE_METHODS:
                    owner = node.func.value
                    if isinstance(owner, ast.Attribute):
                        write_attrs.add(owner.attr)
                    elif isinstance(owner, ast.Name):
                        write_attrs.add(owner.id)
                    elif isinstance(owner, ast.Call) and isinstance(
                        owner.func, ast.Attribute
                    ):
                        # registry.counter("name").inc(...) — chained write.
                        if (
                            owner.func.attr in _REGISTER_METHODS
                            and owner.args
                            and isinstance(owner.args[0], ast.Constant)
                            and isinstance(owner.args[0].value, str)
                        ):
                            chained = series.setdefault(
                                owner.args[0].value,
                                _Series(
                                    name=owner.args[0].value,
                                    path=str(mod.path),
                                    line=node.lineno,
                                ),
                            )
                            chained.chained_write = True

        findings: list[Finding] = []
        for entry in series.values():
            if not entry.chained_write and not (entry.attrs & write_attrs):
                findings.append(
                    Finding(
                        rule=self.name,
                        path=entry.path,
                        line=entry.line,
                        symbol=entry.name,
                        message=(
                            f"metric series {entry.name!r} is registered but "
                            "never incremented/observed anywhere"
                        ),
                    )
                )

        findings.extend(self._check_docs(project, config, series))
        return findings

    def _check_docs(
        self, project: Project, config: AnalysisConfig, series: "dict[str, _Series]"
    ) -> list[Finding]:
        if config.metrics_catalogue is None or not series:
            return []
        if project.docs_dir is None:
            anchor = next(iter(series.values()))
            return [
                Finding(
                    rule=self.name,
                    path=anchor.path,
                    line=anchor.line,
                    symbol=config.metrics_catalogue,
                    message=(
                        "no docs directory found, so the metric catalogue "
                        f"({config.metrics_catalogue}) cannot be checked"
                    ),
                )
            ]
        catalogue = project.docs_dir / config.metrics_catalogue
        if not catalogue.is_file():
            anchor = next(iter(series.values()))
            return [
                Finding(
                    rule=self.name,
                    path=anchor.path,
                    line=anchor.line,
                    symbol=config.metrics_catalogue,
                    message=f"metric catalogue {catalogue} does not exist",
                )
            ]
        text = catalogue.read_text(encoding="utf-8")
        documented = set(_SERIES_RE.findall(text))
        findings: list[Finding] = []
        for entry in series.values():
            if entry.name not in documented:
                findings.append(
                    Finding(
                        rule=self.name,
                        path=entry.path,
                        line=entry.line,
                        symbol=entry.name,
                        message=(
                            f"metric series {entry.name!r} is missing from the "
                            f"catalogue in {catalogue.name}"
                        ),
                    )
                )
        for name in sorted(documented - set(series)):
            findings.append(
                Finding(
                    rule=self.name,
                    path=str(catalogue),
                    line=_line_of(text, name),
                    symbol=name,
                    message=(
                        f"catalogue documents {name!r} but no such series is "
                        "registered in the code"
                    ),
                )
            )
        return findings


def _assign_target_attr(tree: ast.Module, call: ast.Call) -> "str | None":
    """If ``call`` is the value of ``self.X = call`` (or ``X = call``),
    return the bound attribute/variable name."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call:
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    return target.attr
                if isinstance(target, ast.Name):
                    return target.id
    return None


def _line_of(text: str, needle: str) -> int:
    for index, line in enumerate(text.splitlines(), start=1):
        if needle in line:
            return index
    return 0
