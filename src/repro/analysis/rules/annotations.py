"""Rule: annotation coverage — scoped modules carry complete type
annotations (the locally runnable half of the mypy --strict gate)."""

from __future__ import annotations

import ast

from ..base import AnalysisConfig, Finding, Rule, register
from ..project import Project

__all__ = ["AnnotationsRule"]


@register
class AnnotationsRule(Rule):
    """Every parameter and return in scoped modules is annotated."""

    name = "annotations"
    description = (
        "Modules in the annotation scope (the analysis package and the "
        "serve protocol) must annotate every parameter and return type "
        "so mypy --strict in CI has nothing to infer from context."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Flag every unannotated parameter or return in scope."""
        findings: list[Finding] = []
        for mod in project.modules.values():
            if not config.in_annotation_scope(mod.name):
                continue
            path = str(mod.path)
            for node in ast.walk(mod.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                in_class = _is_method(mod.tree, node)
                args = node.args
                positional = [*args.posonlyargs, *args.args]
                for index, arg in enumerate(positional):
                    if in_class and index == 0 and arg.arg in ("self", "cls"):
                        continue
                    if arg.annotation is None:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=node.name,
                                message=f"parameter {arg.arg!r} is unannotated",
                            )
                        )
                for arg in args.kwonlyargs:
                    if arg.annotation is None:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=node.name,
                                message=f"parameter {arg.arg!r} is unannotated",
                            )
                        )
                for vararg in (args.vararg, args.kwarg):
                    if vararg is not None and vararg.annotation is None:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=node.name,
                                message=f"parameter {vararg.arg!r} is unannotated",
                            )
                        )
                if node.returns is None:
                    findings.append(
                        Finding(
                            rule=self.name,
                            path=path,
                            line=node.lineno,
                            symbol=node.name,
                            message="return type is unannotated",
                        )
                    )
        return findings


def _is_method(tree: ast.Module, target: ast.AST) -> bool:
    """Whether ``target`` is a direct child of a class body."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and target in node.body:
            return True
    return False
