"""Static rules; importing this package registers all of them.

Each rule module defines one small :class:`~repro.analysis.base.Rule`
subclass guarding one project invariant — see ``docs/analysis.md`` for
the catalogue.
"""

from __future__ import annotations

from . import (  # noqa: F401  (registration side effect)
    annotations,
    hot_path,
    lock_order,
    metrics_coherence,
    shm_lifecycle,
    single_writer,
)

__all__ = [
    "annotations",
    "hot_path",
    "lock_order",
    "metrics_coherence",
    "shm_lifecycle",
    "single_writer",
]
