"""Rule: hot-path hygiene — no pickling, per-row Python loops, or
concatenation inside the per-task inner loops."""

from __future__ import annotations

import ast
from typing import Callable

from ..base import AnalysisConfig, Finding, Rule, register
from ..locks import _expand
from ..project import FunctionInfo, Module, Project, _dotted

__all__ = ["HotPathRule"]

#: Module call prefixes banned on the hot path (serialization and deep
#: copies belong at the boundaries, never per task).
_BANNED_CALL_PREFIXES = (
    "pickle.",
    "cPickle.",
    "marshal.",
    "json.",
    "copy.deepcopy",
)
#: Methods that materialise per-row Python objects from columnar data.
_PER_ROW_METHODS = ("to_rows", "tolist")
#: Growing an array per loop iteration is the quadratic antipattern.
_LOOP_ALLOC_TAILS = ("concatenate", "vstack", "hstack")

_Flag = Callable[[ast.AST, str], None]


@register
class HotPathRule(Rule):
    """Per-task code stays columnar: no (un)pickling, no per-row Python."""

    name = "hot-path"
    description = (
        "Functions tagged hot (executor task loops, fused kernels, "
        "dispatcher/buffer/result-stage inner paths, per-task metric "
        "hooks) may not call pickle/marshal/json/deepcopy, materialise "
        "or iterate per-row Python objects from TupleBatch columns, or "
        "concatenate arrays inside a loop."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Check every configured hot function (and that the list is live)."""
        findings: list[Finding] = []
        for qualname in config.hot_functions:
            fn = project.functions.get(qualname)
            if fn is None:
                anchor = next(iter(project.modules.values()), None)
                findings.append(
                    Finding(
                        rule=self.name,
                        path=str(anchor.path) if anchor else "<config>",
                        line=0,
                        symbol=qualname,
                        message=(
                            f"hot function {qualname!r} from the configuration "
                            "does not exist; update AnalysisConfig.hot_functions "
                            "after refactors so hot-path coverage stays honest"
                        ),
                    )
                )
                continue
            findings.extend(self._check_function(project, fn))
        return findings

    def _check_function(self, project: Project, fn: FunctionInfo) -> list[Finding]:
        module = project.modules[fn.module]
        path = str(module.path)
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    rule=self.name,
                    path=path,
                    line=getattr(node, "lineno", 0),
                    symbol=fn.key,
                    message=message,
                )
            )

        loop_depth = 0

        def visit(node: ast.AST) -> None:
            nonlocal loop_depth
            is_loop = isinstance(node, (ast.For, ast.While))
            if isinstance(node, ast.For):
                _check_loop_iter(node, flag)
            if isinstance(node, ast.Call):
                _check_call(module, node, flag, loop_depth)
            if is_loop:
                loop_depth += 1
            for child in ast.iter_child_nodes(node):
                visit(child)
            if is_loop:
                loop_depth -= 1

        for stmt in fn.node.body:
            visit(stmt)
        return findings


def _check_call(module: Module, node: ast.Call, flag: _Flag, loop_depth: int) -> None:
    dotted = _dotted(node.func)
    expanded = _expand(module, dotted) if dotted else None
    if expanded is not None:
        for prefix in _BANNED_CALL_PREFIXES:
            if expanded == prefix.rstrip(".") or expanded.startswith(prefix):
                flag(
                    node,
                    f"hot path calls {expanded}(); serialization/deep-copy "
                    "belongs at the boundaries, never per task",
                )
                return
    if isinstance(node.func, ast.Attribute):
        if node.func.attr in _PER_ROW_METHODS:
            flag(
                node,
                f".{node.func.attr}() materialises per-row Python objects "
                "on the hot path; stay columnar",
            )
            return
        if loop_depth > 0 and node.func.attr in _LOOP_ALLOC_TAILS:
            flag(
                node,
                f".{node.func.attr}() inside a loop reallocates per "
                "iteration; hoist the concatenation out of the loop",
            )


def _check_loop_iter(node: ast.For, flag: _Flag) -> None:
    iter_expr = node.iter
    if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Attribute):
        if iter_expr.func.attr in _PER_ROW_METHODS:
            flag(
                node,
                f"for-loop over .{iter_expr.func.attr}() walks tuples one "
                "Python object at a time on the hot path",
            )
            return
    if isinstance(iter_expr, ast.Call) and isinstance(iter_expr.func, ast.Name):
        if iter_expr.func.id == "zip" and any(
            isinstance(arg, ast.Starred) for arg in iter_expr.args
        ):
            flag(
                node,
                "for-loop over zip(*columns) builds per-row tuples on the "
                "hot path; stay columnar",
            )
