"""Rule: single-writer dispatch — head/tail pointer mutations and
circular-buffer mutators stay inside the buffer + dispatch layers."""

from __future__ import annotations

import ast

from ..base import AnalysisConfig, Finding, Rule, register
from ..project import Project

__all__ = ["SingleWriterRule"]

#: Circular-buffer pointer attributes only the owning layer may store to.
_POINTER_ATTRS = ("head", "tail")
#: Buffer mutators whose call sites are restricted to the dispatch layer.
_MUTATORS = ("insert", "release")
#: Dispatcher task-cut entry points (one dispatching thread per query).
_TASK_CUTTERS = ("create_task", "shed_task")


@register
class SingleWriterRule(Rule):
    """SABER's single dispatching writer per circular buffer (§4.1)."""

    name = "single-writer"
    description = (
        "Buffer head/tail pointers may only be stored from the buffer "
        "module itself; buffer construction and insert/release calls "
        "are restricted to the buffer + dispatcher modules; task cuts "
        "are restricted to the dispatch layer."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Scan every module for out-of-layer buffer mutations."""
        findings: list[Finding] = []
        buffer_modules = config.single_writer_buffer_modules
        dispatch_modules = config.single_writer_dispatch_modules
        if not buffer_modules:
            return findings
        writer_modules = buffer_modules + dispatch_modules
        buffer_classes = {
            info.key
            for info in project.classes.values()
            if info.module in buffer_modules
        }

        for mod in project.modules.values():
            path = str(mod.path)
            in_buffer = mod.name in buffer_modules
            in_writer = mod.name in writer_modules

            if not in_buffer:
                for node in ast.walk(mod.tree):
                    target: "ast.expr | None" = None
                    if isinstance(node, ast.Assign):
                        for tgt in node.targets:
                            if isinstance(tgt, ast.Attribute):
                                target = tgt
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        node.target, ast.Attribute
                    ):
                        target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _POINTER_ATTRS
                    ):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=target.attr,
                                message=(
                                    f"store to .{target.attr} outside the buffer "
                                    f"module(s) {', '.join(buffer_modules)} breaks "
                                    "single-writer pointer ownership"
                                ),
                            )
                        )

            for fn in project.functions.values():
                if fn.module != mod.name:
                    continue
                ctx = project.function_context(fn)
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Call):
                        continue
                    func = node.func
                    # Buffer construction outside the writer layer.
                    if isinstance(func, ast.Name) and not in_writer:
                        key = project.resolve_name(mod.name, func.id)
                        if key in buffer_classes:
                            findings.append(
                                Finding(
                                    rule=self.name,
                                    path=path,
                                    line=node.lineno,
                                    symbol=key.rpartition(".")[2],
                                    message=(
                                        f"{key} constructed outside the buffer/"
                                        "dispatcher layer; buffers belong to the "
                                        "dispatching thread"
                                    ),
                                )
                            )
                        continue
                    if not isinstance(func, ast.Attribute):
                        continue
                    owner = project.infer_expr_type(mod.name, func.value, ctx)
                    if owner is None:
                        continue
                    if func.attr in _MUTATORS and owner in buffer_classes and not in_writer:
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=f"{owner.rpartition('.')[2]}.{func.attr}",
                                message=(
                                    f"call to buffer mutator .{func.attr}() outside "
                                    "the buffer/dispatcher layer violates "
                                    "single-writer dispatch"
                                ),
                            )
                        )
                    elif (
                        func.attr in _TASK_CUTTERS
                        and owner.rpartition(".")[2] == "Dispatcher"
                        and mod.name not in dispatch_modules
                    ):
                        findings.append(
                            Finding(
                                rule=self.name,
                                path=path,
                                line=node.lineno,
                                symbol=f"Dispatcher.{func.attr}",
                                message=(
                                    f".{func.attr}() outside the dispatch layer: "
                                    "only the dispatching thread may cut tasks"
                                ),
                            )
                        )
        return findings
