"""Rule: every shared-memory creation must be reachable from a
``close()``/``unlink()``/finalizer path — leaked ``/dev/shm`` segments
outlive the process."""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..base import AnalysisConfig, Finding, Rule, register
from ..project import ClassInfo, FunctionInfo, Project, _dotted

__all__ = ["ShmLifecycleRule"]

#: Call tails treated as shared-memory resource creation.
_CREATOR_TAILS = ("SharedMemory", "SharedMemoryStore")
#: Methods that count as a release path when they touch the attribute.
_RELEASE_METHODS = ("close", "shutdown", "stop", "unlink", "__del__", "__exit__")
#: Registering with one of these also counts as a release path.
_FINALIZER_CALLS = ("finalize", "register")


@dataclass
class _Creation:
    """One shared-memory creation site and how its value is bound."""

    fn: FunctionInfo
    node: ast.Call
    what: str


@register
class ShmLifecycleRule(Rule):
    """No shared-memory segment without a reachable release path."""

    name = "shm-lifecycle"
    description = (
        "Every SharedMemory/SharedMemoryStore creation must be stored "
        "somewhere a close()/unlink()/finalizer path reaches: an "
        "attribute touched by the owning class's close/shutdown/__del__, "
        "a local that is closed, returned, or handed to a finalizer."
    )

    def check(self, project: Project, config: AnalysisConfig) -> list[Finding]:
        """Trace each creation to a release path (or flag it)."""
        creator_keys = set(_CREATOR_TAILS)
        # Factory propagation: a function returning a creation is itself
        # a creator; its call sites are checked like direct creations.
        for _ in range(3):
            grew = False
            for fn in project.functions.values():
                if fn.key in creator_keys:
                    continue
                if self._returns_creation(project, fn, creator_keys):
                    creator_keys.add(fn.key)
                    creator_keys.add(fn.qualname.rpartition(".")[2] or fn.qualname)
                    grew = True
            if not grew:
                break

        findings: list[Finding] = []
        for fn in project.functions.values():
            for creation in self._creations(project, fn, creator_keys):
                finding = self._check_creation(project, creation)
                if finding is not None:
                    findings.append(finding)
        return findings

    # -- creation discovery --------------------------------------------------

    def _is_creator_call(
        self, project: Project, fn: FunctionInfo, call: ast.Call, creator_keys: set[str]
    ) -> bool:
        dotted = _dotted(call.func)
        if dotted is None:
            return False
        tail = dotted.rpartition(".")[2]
        if tail in _CREATOR_TAILS:
            return True
        key = project.resolve_name(fn.module, dotted)
        if key is not None and key in creator_keys:
            return True
        # self._factory(...) within the same class.
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "self"
            and fn.cls is not None
        ):
            method = project.find_method(fn.cls.key, call.func.attr)
            if method is not None and method.key in creator_keys:
                return True
        return tail in creator_keys

    def _returns_creation(
        self, project: Project, fn: FunctionInfo, creator_keys: set[str]
    ) -> bool:
        returned_names: set[str] = set()
        created_names: set[str] = set()
        direct = False
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Call) and self._is_creator_call(
                    project, fn, node.value, creator_keys
                ):
                    direct = True
                elif isinstance(node.value, ast.Name):
                    returned_names.add(node.value.id)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if self._is_creator_call(project, fn, node.value, creator_keys):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            created_names.add(target.id)
        return direct or bool(returned_names & created_names)

    def _creations(
        self, project: Project, fn: FunctionInfo, creator_keys: set[str]
    ) -> "list[_Creation]":
        if self._returns_creation(project, fn, creator_keys):
            return []  # the factory itself is exempt; call sites are checked
        out: list[_Creation] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call) and self._is_creator_call(
                project, fn, node, creator_keys
            ):
                what = _dotted(node.func) or "<shared-memory>"
                out.append(_Creation(fn=fn, node=node, what=what))
        return out

    # -- release-path verification -------------------------------------------

    def _check_creation(self, project: Project, creation: _Creation) -> "Finding | None":
        fn = creation.fn
        binding = self._binding(fn, creation.node)
        path = str(project.modules[fn.module].path)

        if binding is None:
            return Finding(
                rule=self.name,
                path=path,
                line=creation.node.lineno,
                symbol=fn.key,
                message=(
                    f"{creation.what}(...) is created without binding the "
                    "handle; nothing can ever close/unlink it"
                ),
            )
        kind, name = binding
        if kind == "self":
            if fn.cls is not None and self._class_releases(project, fn.cls, name):
                return None
            return Finding(
                rule=self.name,
                path=path,
                line=creation.node.lineno,
                symbol=f"{fn.cls.key if fn.cls else fn.key}.{name}",
                message=(
                    f"{creation.what}(...) stored on self.{name} but no "
                    "close/shutdown/__del__/__exit__ method releases it"
                ),
            )
        # Local binding: released, finalized, or returned in this function?
        if self._local_released(fn, name):
            return None
        return Finding(
            rule=self.name,
            path=path,
            line=creation.node.lineno,
            symbol=fn.key,
            message=(
                f"{creation.what}(...) bound to local {name!r} is neither "
                "closed, returned, stored, nor registered with a finalizer"
            ),
        )

    def _binding(
        self, fn: FunctionInfo, call: ast.Call
    ) -> "tuple[str, str] | None":
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and node.value is call:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        return ("self", target.attr)
                    if isinstance(target, ast.Name):
                        return ("local", target.id)
            # self.buffers.append(creation) binds through the container.
            if (
                isinstance(node, ast.Call)
                and node.args
                and node.args[0] is call
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("append", "add", "appendleft")
            ):
                inner = node.func.value
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    return ("self", inner.attr)
        return None

    def _class_releases(self, project: Project, cls: ClassInfo, attr: str) -> bool:
        """Does any release method (transitively via self-calls) touch attr?"""
        for info in project.mro(cls.key):
            for method_name in _RELEASE_METHODS:
                method = project.find_method(info.key, method_name)
                if method is not None and self._touches_attr(
                    project, method, attr, depth=2
                ):
                    return True
        return False

    def _touches_attr(
        self, project: Project, fn: FunctionInfo, attr: str, depth: int
    ) -> bool:
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Attribute)
                and node.attr == attr
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                return True
            if (
                depth > 0
                and isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and fn.cls is not None
            ):
                callee = project.find_method(fn.cls.key, node.func.attr)
                if callee is not None and self._touches_attr(
                    project, callee, attr, depth - 1
                ):
                    return True
        return False

    def _local_released(self, fn: FunctionInfo, name: str) -> bool:
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
                if node.value.id == name:
                    return True
            if isinstance(node, ast.Call):
                func = node.func
                # name.close() / name.unlink()
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("close", "unlink")
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                ):
                    return True
                # weakref.finalize(obj, name.close) / atexit.register(...)
                dotted = _dotted(func)
                if dotted and dotted.rpartition(".")[2] in _FINALIZER_CALLS:
                    for arg in ast.walk(node):
                        if isinstance(arg, ast.Name) and arg.id == name:
                            return True
                # Stored or passed onward: any call argument mentioning it
                # hands ownership elsewhere (constructor wrapping).
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
            # Stored onto self: self.x = name
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                if node.value.id == name:
                    return True
            # with-statement management: with creation as name / ExitStack.
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if (
                        isinstance(item.optional_vars, ast.Name)
                        and item.optional_vars.id == name
                    ):
                        return True
        return False
