"""Project-invariant static analysis and runtime race validation.

This package machine-checks the concurrency disciplines the engine's
correctness rests on (see ``docs/analysis.md``):

* ``repro check`` — an AST-based static analyzer with a pluggable rule
  registry (single-writer dispatch, lock ordering, hot-path hygiene,
  shared-memory lifecycle, metrics coherence, annotation coverage);
* :mod:`repro.analysis.lockdep` — a lockdep-style instrumented lock
  that records the *actual* acquisition order while the test suite runs
  (``REPRO_LOCKDEP=1``) and asserts it against the static graph.

Import surface is deliberately small: the engine's hot modules import
only :func:`repro.analysis.lockdep.make_lock` /
:func:`~repro.analysis.lockdep.make_condition`, which are plain
``threading`` factories unless lockdep is enabled.
"""

from __future__ import annotations

__all__ = ["__doc__"]
