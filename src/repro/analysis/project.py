"""Project model: parsed modules, classes, and best-effort type inference.

The analyzer works on plain ``ast`` trees — nothing is imported or
executed.  Module names are dotted paths relative to the scanned root
with a leading ``repro`` package component stripped, so the real tree
and small fixture trees in tests produce the same shape of names
(``core.executor``, ``serve.metrics``, ...).

Type inference is deliberately best-effort and conservative: it
resolves project classes through constructor calls, parameter / return
annotations, and ``self.x = ...`` assignments, and gives up (returns
``None``) on anything else.  Rules must treat an unresolved type as
"unknown", never as "safe" or "violating" — the runtime lockdep half
covers what static resolution cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .base import inline_suppressions

__all__ = ["ClassInfo", "FunctionInfo", "Module", "Project"]


@dataclass
class Module:
    """One parsed source file."""

    path: Path
    name: str
    tree: ast.Module
    source_lines: list[str]
    is_package: bool = False
    #: local name -> dotted target ("api.session.SaberSession", "threading", ...)
    imports: dict[str, str] = field(default_factory=dict)

    def suppressions(self) -> "dict[int, set[str]]":
        """Inline ``# repro: allow(...)`` comments, by line."""
        return inline_suppressions(self.source_lines)


@dataclass
class ClassInfo:
    """One class definition with its methods and declared attributes."""

    module: str
    name: str
    node: ast.ClassDef
    base_exprs: list[ast.expr] = field(default_factory=list)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: class-level ``attr: Annotation`` declarations (dataclass fields).
    attr_annotations: dict[str, ast.expr] = field(default_factory=dict)

    @property
    def key(self) -> str:
        """Project-wide class key, ``module.ClassName``."""
        return f"{self.module}.{self.name}" if self.module else self.name


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str
    node: ast.FunctionDef
    cls: "ClassInfo | None" = None

    @property
    def key(self) -> str:
        """Project-wide function key, ``module.Class.method`` or ``module.func``."""
        return f"{self.module}.{self.qualname}" if self.module else self.qualname


def _module_name(file: Path, root: Path) -> "tuple[str, bool]":
    """Dotted module name for ``file`` relative to ``root`` (and
    whether it is a package ``__init__``), stripping a leading
    ``repro`` component so node names match across real and fixture
    trees."""
    parts = list(file.relative_to(root).parts)
    parts[-1] = parts[-1][: -len(".py")]
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    if parts and parts[0] == "repro":
        parts = parts[1:]
    return ".".join(parts), is_package


class Project:
    """A set of parsed modules with cross-module resolution helpers."""

    def __init__(self, root: Path, docs_dir: "Path | None" = None) -> None:
        self.root = root
        self.docs_dir = docs_dir
        self.modules: dict[str, Module] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        #: inferred attribute types: (class key, attr) -> class key.
        self.attr_types: dict[tuple[str, str], str] = {}

    # -- loading -------------------------------------------------------------

    @classmethod
    def load(cls, paths: "list[Path]", docs_dir: "Path | None" = None) -> "Project":
        """Parse every ``*.py`` file under ``paths`` into one project.

        ``paths`` may be directories (scanned recursively) or files.
        The first path's directory is the root module names are
        computed against; pass the ``src`` directory (or the package
        directory) for the real tree.
        """
        if not paths:
            raise ValueError("Project.load needs at least one path")
        first = paths[0]
        root = first if first.is_dir() else first.parent
        if docs_dir is None:
            for candidate in (root.parent / "docs", root / "docs"):
                if candidate.is_dir():
                    docs_dir = candidate
                    break
        project = cls(root, docs_dir)
        seen: set[Path] = set()
        for path in paths:
            files = sorted(path.rglob("*.py")) if path.is_dir() else [path]
            for file in files:
                resolved = file.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                base = root if file.is_relative_to(root) else file.parent
                project._add_file(file, base)
        project._infer_attr_types()
        return project

    def _add_file(self, file: Path, root: Path) -> None:
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(file))
        name, is_package = _module_name(file, root)
        module = Module(
            path=file,
            name=name,
            tree=tree,
            source_lines=source.splitlines(),
            is_package=is_package,
        )
        self.modules[name] = module
        self._index_imports(module)
        self._index_definitions(module)

    def _index_imports(self, module: Module) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = _strip_repro(alias.name)
                    module.imports[alias.asname or alias.name.split(".")[0]] = target
            elif isinstance(node, ast.ImportFrom):
                base = _strip_repro(node.module or "")
                if node.level:
                    package = module.name if module.is_package else _parent(module.name)
                    for _ in range(node.level - 1):
                        package = _parent(package)
                    base = f"{package}.{base}".strip(".") if base else package
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    module.imports[alias.asname or alias.name] = target

    def _index_definitions(self, module: Module) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = ClassInfo(module=module.name, name=node.name, node=node)
                info.base_exprs = list(node.bases)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if isinstance(item, ast.FunctionDef):
                            info.methods[item.name] = item
                            fn = FunctionInfo(
                                module=module.name,
                                qualname=f"{node.name}.{item.name}",
                                node=item,
                                cls=info,
                            )
                            self.functions[fn.key] = fn
                    elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                        info.attr_annotations[item.target.id] = item.annotation
                self.classes[info.key] = info
            elif isinstance(node, ast.FunctionDef):
                fn = FunctionInfo(module=module.name, qualname=node.name, node=node)
                self.functions[fn.key] = fn

    # -- resolution ----------------------------------------------------------

    def resolve_name(self, module: str, name: str) -> "str | None":
        """Resolve a local ``name`` in ``module`` to a project entity key.

        Follows import chains (including package ``__init__``
        re-exports) a bounded number of hops; returns the class or
        function key, or ``None`` for externals."""
        target = f"{module}.{name}" if module else name
        for _ in range(6):
            if target in self.classes or target in self.functions:
                return target
            mod, _, attr = target.rpartition(".")
            while mod and mod not in self.modules:
                # ``a.b.c.X`` may really be module ``a.b`` + nested attr.
                mod, _, rest = mod.rpartition(".")
                attr = f"{rest}.{attr}"
            if not mod or "." in attr:
                return None
            imported = self.modules[mod].imports.get(attr)
            if imported is None or imported == target:
                qualified = f"{mod}.{attr}"
                if qualified != target and (
                    qualified in self.classes or qualified in self.functions
                ):
                    return qualified
                return None
            target = imported
        return None

    def resolve_class(self, module: str, name: str) -> "ClassInfo | None":
        """Resolve ``name`` in ``module`` to a :class:`ClassInfo`."""
        key = self.resolve_name(module, name)
        return self.classes.get(key) if key else None

    def mro(self, class_key: str) -> "list[ClassInfo]":
        """The class plus its resolvable project bases, nearest first."""
        result: list[ClassInfo] = []
        queue = [class_key]
        seen: set[str] = set()
        while queue:
            key = queue.pop(0)
            if key in seen:
                continue
            seen.add(key)
            info = self.classes.get(key)
            if info is None:
                continue
            result.append(info)
            for base in info.base_exprs:
                base_key = self._annotation_key(info.module, base)
                if base_key:
                    queue.append(base_key)
        return result

    def find_method(self, class_key: str, name: str) -> "FunctionInfo | None":
        """Look up a method through the project-visible MRO."""
        for info in self.mro(class_key):
            if name in info.methods:
                return self.functions.get(f"{info.key}.{name}".lstrip("."))
        return None

    def _annotation_key(self, module: str, expr: "ast.expr | None") -> "str | None":
        """Best-effort: resolve a type annotation to a project class key."""
        if expr is None:
            return None
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            try:
                expr = ast.parse(expr.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(expr, ast.Name):
            key = self.resolve_name(module, expr.id)
            return key if key in self.classes else None
        if isinstance(expr, ast.Attribute):
            dotted = _dotted(expr)
            if dotted is None:
                return None
            key = self.resolve_name(module, dotted)
            return key if key in self.classes else None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.BitOr):
            return self._annotation_key(module, expr.left) or self._annotation_key(
                module, expr.right
            )
        if isinstance(expr, ast.Subscript):
            dotted = _dotted(expr.value)
            if dotted in ("Optional", "typing.Optional") and isinstance(
                expr.slice, (ast.Name, ast.Attribute, ast.Constant)
            ):
                return self._annotation_key(module, expr.slice)
        return None

    # -- type inference ------------------------------------------------------

    def class_attr_type(self, class_key: str, attr: str) -> "str | None":
        """Inferred type of ``self.attr`` for ``class_key`` (or bases)."""
        for info in self.mro(class_key):
            inferred = self.attr_types.get((info.key, attr))
            if inferred:
                return inferred
            annotation = info.attr_annotations.get(attr)
            if annotation is not None:
                key = self._annotation_key(info.module, annotation)
                if key:
                    return key
        return None

    def param_types(self, fn: FunctionInfo) -> "dict[str, str]":
        """Parameter name -> class key, from annotations."""
        types: dict[str, str] = {}
        args = fn.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            key = self._annotation_key(fn.module, arg.annotation)
            if key:
                types[arg.arg] = key
        return types

    def return_type(self, fn: FunctionInfo) -> "str | None":
        """Declared return type as a project class key, if resolvable."""
        return self._annotation_key(fn.module, fn.node.returns)

    def infer_call_type(
        self, module: str, call: ast.Call, ctx: "_ExprContext"
    ) -> "str | None":
        """Type of a call expression: constructed class or return annotation."""
        func = call.func
        if isinstance(func, ast.Name):
            key = self.resolve_name(module, func.id)
            if key in self.classes:
                return key
            fn = self.functions.get(key) if key else None
            return self.return_type(fn) if fn else None
        if isinstance(func, ast.Attribute):
            owner = self.infer_expr_type(module, func.value, ctx)
            if owner:
                method = self.find_method(owner, func.attr)
                return self.return_type(method) if method else None
            dotted = _dotted(func)
            if dotted:
                key = self.resolve_name(module, dotted)
                if key in self.classes:
                    return key
                fn = self.functions.get(key) if key else None
                return self.return_type(fn) if fn else None
        return None

    def infer_expr_type(
        self, module: str, expr: ast.expr, ctx: "_ExprContext"
    ) -> "str | None":
        """Best-effort type of an expression, as a project class key."""
        if isinstance(expr, ast.Name):
            if expr.id == "self" and ctx.self_class:
                return ctx.self_class
            return ctx.locals.get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.infer_expr_type(module, expr.value, ctx)
            if owner:
                return self.class_attr_type(owner, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            return self.infer_call_type(module, expr, ctx)
        return None

    def function_context(self, fn: FunctionInfo) -> "_ExprContext":
        """Resolution context for ``fn``: params plus simple local assigns."""
        ctx = _ExprContext(
            self_class=fn.cls.key if fn.cls else None, locals=self.param_types(fn)
        )
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                inferred = self.infer_expr_type(fn.module, node.value, ctx)
                if inferred:
                    ctx.locals.setdefault(node.targets[0].id, inferred)
        return ctx

    def _infer_attr_types(self) -> None:
        """Fixpoint over ``self.x = <expr>`` assignments in all methods."""
        for _ in range(6):
            changed = False
            for fn in self.functions.values():
                if fn.cls is None:
                    continue
                ctx = _ExprContext(self_class=fn.cls.key, locals=self.param_types(fn))
                for node in ast.walk(fn.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    inferred = self.infer_expr_type(fn.module, node.value, ctx)
                    if inferred is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            slot = (fn.cls.key, target.attr)
                            if self.attr_types.get(slot) != inferred:
                                self.attr_types[slot] = inferred
                                changed = True
            if not changed:
                break


@dataclass
class _ExprContext:
    """Resolution context for :meth:`Project.infer_expr_type`."""

    self_class: "str | None" = None
    locals: dict[str, str] = field(default_factory=dict)


def _strip_repro(dotted: str) -> str:
    if dotted == "repro":
        return ""
    if dotted.startswith("repro."):
        return dotted[len("repro.") :]
    return dotted


def _parent(dotted: str) -> str:
    return dotted.rpartition(".")[0]


def _dotted(expr: ast.expr) -> "str | None":
    """Flatten ``a.b.c`` attribute chains to a dotted string."""
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None
