"""The ``repro check`` subcommand: run the static rules over a tree.

Exit codes: 0 — clean (all findings suppressed or none); 1 — findings;
2 — usage error.  See ``docs/analysis.md`` for the rule catalogue and
suppression formats.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .base import AnalysisConfig, CheckResult, DEFAULT_CONFIG, Finding, all_rules
from .baseline import Baseline
from .locks import build_lock_graph
from .project import Project

__all__ = ["main", "run_check"]

_BASELINE_NAME = "analysis-baseline.json"


def run_check(
    project: Project,
    config: AnalysisConfig,
    baseline: "Baseline | None" = None,
    rule_names: "Sequence[str] | None" = None,
) -> CheckResult:
    """Run the (selected) registered rules over ``project``."""
    result = CheckResult()
    suppressions = {
        str(mod.path): mod.suppressions() for mod in project.modules.values()
    }
    for rule in all_rules():
        if rule_names and rule.name not in rule_names:
            continue
        for finding in rule.check(project, config):
            allowed = suppressions.get(finding.path, {}).get(finding.line, set())
            if finding.rule in allowed:
                result.suppressed.append(finding)
            elif baseline is not None and baseline.matches(finding):
                result.baselined.append(finding)
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return result


def _default_baseline(paths: "list[Path]") -> Path:
    """``analysis-baseline.json`` next to the scanned tree, else CWD."""
    first = paths[0]
    root = first if first.is_dir() else first.parent
    for candidate in (root.parent / _BASELINE_NAME, root / _BASELINE_NAME):
        if candidate.is_file():
            return candidate
    return root.parent / _BASELINE_NAME


def _verify_lockdep_report(
    report_path: Path, project: Project, config: AnalysisConfig
) -> "tuple[bool, str]":
    """Validate a lockdep JSON report against the static graph."""
    from .lockdep import verify

    payload = json.loads(report_path.read_text(encoding="utf-8"))
    observed: dict[tuple[str, str], int] = {}
    for key, count in payload.get("observed_edges", {}).items():
        src, _, dst = key.partition(" -> ")
        observed[(src, dst)] = int(count)
    graph = build_lock_graph(project, config)
    report = verify(observed, graph.edge_pairs())
    return report.ok, report.summary()


def build_arg_parser() -> argparse.ArgumentParser:
    """The ``repro check`` argument parser (reused by the main CLI)."""
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Static project-invariant analysis (see docs/analysis.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"suppression baseline file (default: {_BASELINE_NAME} next to the tree)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--docs",
        default=None,
        help="docs directory for the metrics catalogue check",
    )
    parser.add_argument(
        "--lockdep-report",
        default=None,
        help="also validate a lockdep JSON report against the static lock graph",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point for ``repro check``; returns the exit code."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.name}: {rule.description}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"repro check: no such path: {missing[0]}", file=sys.stderr)
        return 2

    docs_dir = Path(args.docs) if args.docs else None
    try:
        project = Project.load(paths, docs_dir=docs_dir)
    except SyntaxError as exc:
        print(f"repro check: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    baseline_path = Path(args.baseline) if args.baseline else _default_baseline(paths)
    baseline = Baseline.load(baseline_path)
    config = DEFAULT_CONFIG
    result = run_check(project, config, baseline=baseline, rule_names=args.rule)

    if args.write_baseline:
        baseline.write(baseline_path, result.findings + result.baselined)
        print(
            f"wrote {len(result.findings) + len(result.baselined)} suppression(s) "
            f"to {baseline_path}"
        )
        return 0

    exit_code = 0 if result.clean else 1
    stale = baseline.unused(result.findings + result.baselined)

    if args.format == "json":
        payload = {
            "findings": [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "line": f.line,
                    "symbol": f.symbol,
                    "message": f.message,
                    "fingerprint": f.fingerprint,
                }
                for f in result.findings
            ],
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
            "stale_baseline_entries": stale,
            "ok": result.clean,
        }
        print(json.dumps(payload, indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        summary = (
            f"repro check: {len(result.findings)} finding(s), "
            f"{len(result.suppressed)} inline-suppressed, "
            f"{len(result.baselined)} baselined"
        )
        print(summary)
        if stale:
            print(
                f"repro check: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} no longer match anything; "
                "regenerate with --write-baseline"
            )

    if args.lockdep_report:
        report_path = Path(args.lockdep_report)
        if not report_path.is_file():
            print(f"repro check: no such report: {report_path}", file=sys.stderr)
            return 2
        ok, summary = _verify_lockdep_report(report_path, project, config)
        print(summary)
        if not ok:
            exit_code = 1

    return exit_code


def _render_findings(findings: "list[Finding]") -> str:
    """Text rendering used by tests."""
    return "\n".join(finding.render() for finding in findings)
