"""Static lock model: creation sites and the acquisition-order graph.

Lock discovery understands both the engine's canonical factory calls
(``make_lock("core.executor.ThreadedExecutor._mutex")``) and raw
``threading.Lock()`` / ``threading.Condition()`` construction (used by
test fixtures; banned inside the configured lock scope).  A condition
constructed over an existing lock (``threading.Condition(self._lock)``
or ``make_condition(name, lock=self._lock)``) aliases that lock's
node.

The graph builder walks every function with a lexical held-lock stack
(``with`` nesting), resolves calls through the project's best-effort
type inference (methods, constructors, properties, ``len()``), and
closes the call graph so ``A -> B`` is recorded whenever ``B`` may be
acquired downstream of a call made while ``A`` is held.  Edges only
reachable through callable attributes (``on_release`` hooks, sinks)
are invisible here by design — they are declared in
:class:`~repro.analysis.base.AnalysisConfig.declared_edges` and
cross-checked at runtime by :mod:`repro.analysis.lockdep`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .base import AnalysisConfig
from .graph import LockOrderGraph
from .project import ClassInfo, FunctionInfo, Module, Project, _dotted

__all__ = ["LockModel", "LockSite", "build_lock_model", "build_lock_graph"]

_FACTORY_NAMES = {"make_lock", "make_condition"}
_RAW_LOCKS = {"threading.Lock", "threading.RLock"}
_RAW_CONDITIONS = {"threading.Condition"}


@dataclass
class LockSite:
    """One lock-creation site."""

    node_name: str
    module: str
    lineno: int
    class_key: "str | None" = None
    attr: "str | None" = None
    via_factory: bool = False
    declared_name: "str | None" = None
    aliases: "str | None" = None


@dataclass
class LockModel:
    """Every known lock and where it lives."""

    #: (class key, attr) -> node name (aliases already collapsed).
    attr_locks: dict[tuple[str, str], str] = field(default_factory=dict)
    #: (module, variable) -> node name, for module-level locks.
    module_locks: dict[tuple[str, str], str] = field(default_factory=dict)
    sites: list[LockSite] = field(default_factory=list)

    def node_for_attr(self, project: Project, class_key: str, attr: str) -> "str | None":
        """Lock node for ``self.attr`` on ``class_key``, MRO-aware."""
        for info in project.mro(class_key):
            node = self.attr_locks.get((info.key, attr))
            if node:
                return node
        return None


def _expand(module: Module, dotted: str) -> str:
    """Expand a local name through the module's import map."""
    head, _, rest = dotted.partition(".")
    target = module.imports.get(head)
    if target is None:
        return dotted
    return f"{target}.{rest}" if rest else target


def _classify_lock_call(module: Module, call: ast.Call) -> "tuple[str, str | None, ast.expr | None] | None":
    """Classify a call as lock-creating.

    Returns ``(kind, declared_name, alias_expr)`` where kind is one of
    ``factory`` / ``raw``; ``declared_name`` is the literal passed to a
    factory; ``alias_expr`` the existing-lock argument of a condition.
    """
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    expanded = _expand(module, dotted)
    tail = expanded.rpartition(".")[2]
    if tail in _FACTORY_NAMES and (
        dotted.rpartition(".")[2] in _FACTORY_NAMES or "lockdep" in expanded
    ):
        name: "str | None" = None
        if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
            call.args[0].value, str
        ):
            name = call.args[0].value
        alias: "ast.expr | None" = None
        if tail == "make_condition":
            if len(call.args) > 1:
                alias = call.args[1]
            for kw in call.keywords:
                if kw.arg == "lock":
                    alias = kw.value
        return ("factory", name, alias)
    if expanded in _RAW_LOCKS:
        return ("raw", None, None)
    if expanded in _RAW_CONDITIONS:
        alias = call.args[0] if call.args else None
        return ("raw", None, alias)
    return None


def _self_attr(expr: "ast.expr | None") -> "str | None":
    """``self.X`` -> ``X``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def build_lock_model(project: Project) -> LockModel:
    """Find every lock-creation site in the project."""
    model = LockModel()
    pending_aliases: list[tuple[str, str, str, LockSite]] = []

    for mod in project.modules.values():
        # Module-level locks (fixtures mostly).
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                info = _classify_lock_call(mod, stmt.value)
                if info is None:
                    continue
                kind, declared, _alias = info
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        node_name = declared or (
                            f"{mod.name}.{target.id}" if mod.name else target.id
                        )
                        model.module_locks[(mod.name, target.id)] = node_name
                        model.sites.append(
                            LockSite(
                                node_name=node_name,
                                module=mod.name,
                                lineno=stmt.lineno,
                                via_factory=kind == "factory",
                                declared_name=declared,
                            )
                        )

    for cls in project.classes.values():
        mod = project.modules.get(cls.module)
        if mod is None:
            continue
        # Dataclass fields: attr: T = field(default_factory=lambda: make_lock(...))
        # or the reference form field(default_factory=threading.Lock).
        for item in cls.node.body:
            if not (isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name)):
                continue
            info = None
            lineno = item.lineno
            for node in ast.walk(item):
                if isinstance(node, ast.Call):
                    info = _classify_lock_call(mod, node)
                    if info is not None:
                        lineno = node.lineno
                        break
                if isinstance(node, ast.keyword) and node.arg == "default_factory":
                    dotted = _dotted(node.value)
                    if dotted and _expand(mod, dotted) in _RAW_LOCKS | _RAW_CONDITIONS:
                        info = ("raw", None, None)
                        lineno = node.value.lineno
                        break
            if info is not None:
                _record_attr_lock(model, cls, item.target.id, lineno, info, pending_aliases)
        # Method bodies: self.attr = make_lock(...) / threading.Lock().
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                    continue
                info = _classify_lock_call(mod, node.value)
                if info is None:
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        _record_attr_lock(
                            model, cls, attr, node.lineno, info, pending_aliases
                        )

    # Second pass: conditions aliasing another attribute's lock.
    for class_key, attr, alias_attr, site in pending_aliases:
        aliased = model.attr_locks.get((class_key, alias_attr))
        if aliased is not None:
            model.attr_locks[(class_key, attr)] = aliased
            site.node_name = aliased
            site.aliases = aliased
    return model


def _record_attr_lock(
    model: LockModel,
    cls: ClassInfo,
    attr: str,
    lineno: int,
    info: "tuple[str, str | None, ast.expr | None]",
    pending_aliases: "list[tuple[str, str, str, LockSite]]",
) -> None:
    kind, declared, alias = info
    canonical = f"{cls.key}.{attr}"
    node_name = declared or canonical
    site = LockSite(
        node_name=node_name,
        module=cls.module,
        lineno=lineno,
        class_key=cls.key,
        attr=attr,
        via_factory=kind == "factory",
        declared_name=declared,
    )
    model.attr_locks[(cls.key, attr)] = node_name
    model.sites.append(site)
    alias_attr = _self_attr(alias)
    if alias_attr is not None:
        pending_aliases.append((cls.key, attr, alias_attr, site))


# ---------------------------------------------------------------------------
# Acquisition graph
# ---------------------------------------------------------------------------


@dataclass
class _CallSite:
    held: tuple[str, ...]
    callee: str
    lineno: int


@dataclass
class _FunctionSummary:
    """Per-function lexical acquisitions and outgoing calls."""

    fn: FunctionInfo
    lexical_events: "list[tuple[tuple[str, ...], str, int]]" = field(default_factory=list)
    calls: "list[_CallSite]" = field(default_factory=list)

    @property
    def lexical_nodes(self) -> set[str]:
        return {node for _, node, _ in self.lexical_events}


class _LockWalker:
    """Walks one function with a lexical held-lock stack."""

    def __init__(self, project: Project, model: LockModel, fn: FunctionInfo) -> None:
        self.project = project
        self.model = model
        self.fn = fn
        self.module = project.modules[fn.module]
        self.ctx = project.function_context(fn)
        self.summary = _FunctionSummary(fn=fn)

    # -- lock resolution -----------------------------------------------------

    def _lock_node(self, expr: ast.expr) -> "str | None":
        """Resolve an expression to a lock node, if it names one."""
        attr = _self_attr(expr)
        if attr is not None and self.fn.cls is not None:
            return self.model.node_for_attr(self.project, self.fn.cls.key, attr)
        if isinstance(expr, ast.Name):
            node = self.model.module_locks.get((self.fn.module, expr.id))
            if node:
                return node
        if isinstance(expr, ast.Attribute):
            owner = self.project.infer_expr_type(self.fn.module, expr.value, self.ctx)
            if owner:
                return self.model.node_for_attr(self.project, owner, expr.attr)
        return None

    # -- traversal -----------------------------------------------------------

    def run(self) -> _FunctionSummary:
        """Walk the function body; return its summary."""
        self._walk_body(self.fn.node.body, ())
        return self.summary

    def _walk_body(self, body: "list[ast.stmt]", held: tuple[str, ...]) -> None:
        for stmt in body:
            self._walk_stmt(stmt, held)

    def _walk_stmt(self, stmt: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                node = self._lock_node(item.context_expr)
                if node is not None:
                    self.summary.lexical_events.append((inner, node, stmt.lineno))
                    inner = (*inner, node)
                else:
                    self._scan_expr(item.context_expr, inner)
            self._walk_body(stmt.body, inner)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested defs are callbacks; analyzed via their own summaries
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._scan_expr(expr, held)
        for attr_name in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr_name, None)
            if isinstance(nested, list) and nested and isinstance(nested[0], ast.stmt):
                self._walk_body(nested, held)
        for handler in getattr(stmt, "handlers", []):
            self._walk_body(handler.body, held)

    def _scan_expr(self, expr: ast.expr, held: tuple[str, ...]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._scan_call(node, held)
            elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                self._scan_property(node, held)

    def _scan_call(self, call: ast.Call, held: tuple[str, ...]) -> None:
        func = call.func
        # Explicit lock.acquire() counts as a lexical acquisition event.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            node = self._lock_node(func.value)
            if node is not None:
                self.summary.lexical_events.append((held, node, call.lineno))
                return
        callee = self._resolve_callee(call)
        if callee is not None:
            self.summary.calls.append(_CallSite(held=held, callee=callee, lineno=call.lineno))

    def _scan_property(self, node: ast.Attribute, held: tuple[str, ...]) -> None:
        """Property loads run code: resolve ``obj.prop`` to its getter."""
        owner = self.project.infer_expr_type(self.fn.module, node.value, self.ctx)
        if owner is None:
            return
        method = self.project.find_method(owner, node.attr)
        if method is not None and _is_property(method.node):
            self.summary.calls.append(
                _CallSite(held=held, callee=method.key, lineno=node.lineno)
            )

    def _resolve_callee(self, call: ast.Call) -> "str | None":
        func = call.func
        project = self.project
        module = self.fn.module
        if isinstance(func, ast.Name):
            if func.id == "len" and len(call.args) == 1:
                owner = project.infer_expr_type(module, call.args[0], self.ctx)
                if owner:
                    method = project.find_method(owner, "__len__")
                    return method.key if method else None
                return None
            key = project.resolve_name(module, func.id)
            if key is None:
                return None
            if key in project.classes:
                ctor = project.find_method(key, "__init__")
                return ctor.key if ctor else None
            return key if key in project.functions else None
        if isinstance(func, ast.Attribute):
            owner = project.infer_expr_type(module, func.value, self.ctx)
            if owner:
                method = project.find_method(owner, func.attr)
                return method.key if method else None
            dotted = _dotted(func)
            if dotted:
                key = project.resolve_name(module, dotted)
                if key in project.classes:
                    ctor = project.find_method(key, "__init__")
                    return ctor.key if ctor else None
                if key in project.functions:
                    return key
        return None


def _is_property(node: ast.FunctionDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Name) and deco.id == "property":
            return True
        if isinstance(deco, ast.Attribute) and deco.attr in ("getter", "setter"):
            return True
    return False


def build_lock_graph(
    project: Project, config: AnalysisConfig, model: "LockModel | None" = None
) -> LockOrderGraph:
    """Build the static acquisition graph (lexical + transitive + declared)."""
    if model is None:
        model = build_lock_model(project)
    summaries: dict[str, _FunctionSummary] = {}
    for fn in project.functions.values():
        if fn.module not in project.modules:
            continue
        summaries[fn.key] = _LockWalker(project, model, fn).run()

    # Transitive closure: every lock a function may acquire downstream.
    total: dict[str, set[str]] = {key: set(s.lexical_nodes) for key, s in summaries.items()}
    changed = True
    while changed:
        changed = False
        for key, summary in summaries.items():
            bucket = total[key]
            before = len(bucket)
            for call in summary.calls:
                bucket |= total.get(call.callee, set())
            if len(bucket) != before:
                changed = True

    graph = LockOrderGraph()
    for node in set(model.attr_locks.values()) | set(model.module_locks.values()):
        graph.add_node(node)
    for key, summary in summaries.items():
        for held, node, lineno in summary.lexical_events:
            for outer in held:
                graph.add_edge(outer, node, f"{key}:{lineno}")
        for call in summary.calls:
            if not call.held:
                continue
            for node in total.get(call.callee, ()):
                for outer in call.held:
                    graph.add_edge(outer, node, f"{key}:{call.lineno} -> {call.callee}")
    for edge in config.declared_edges:
        graph.add_edge(edge.src, edge.dst, f"declared: {edge.reason}")
    return graph
