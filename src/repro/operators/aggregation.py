"""Sliding-window aggregation α (§5.3) with incremental computation.

The batch operator function partitions the stream batch into window
fragments (provided by the window assigner) and computes one partial
aggregate per fragment *incrementally*: a single prefix-sum pass serves
every sum/count/avg fragment in O(1) per fragment, and a sparse table
serves min/max — instead of rescanning ``O(window size)`` tuples per
fragment.  This is the property that keeps CPU aggregation throughput flat
as the window slide shrinks (Fig. 11b).

COMPLETE fragments are final and emitted immediately; OPENING / CLOSING /
PENDING fragments become mergeable :class:`~.aggregate_functions.Accumulator`
payloads which the result stage combines across consecutive query tasks
(the assembly operator function).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from ..relational.schema import Attribute, Schema, TIMESTAMP_ATTRIBUTE
from ..relational.tuples import TupleBatch
from ..windows.assigner import FragmentState
from ..windows.panes import PrefixRangeAggregator, SparseTableRangeAggregator
from .aggregate_functions import Accumulator, AggregateSpec, finalize
from .base import BatchResult, CostProfile, Operator, StreamSlice


@dataclass
class WindowAccumulator:
    """Partial aggregate of one window across ≥1 fragments."""

    columns: dict[str, Accumulator] = field(default_factory=dict)
    count: float = 0.0
    last_timestamp: int = 0

    def merge(self, other: "WindowAccumulator") -> "WindowAccumulator":
        merged = {name: acc for name, acc in self.columns.items()}
        for name, acc in other.columns.items():
            merged[name] = merged[name].merge(acc) if name in merged else acc
        return WindowAccumulator(
            columns=merged,
            count=self.count + other.count,
            last_timestamp=max(self.last_timestamp, other.last_timestamp),
        )


class Aggregation(Operator):
    """α over one or more aggregate functions (no grouping).

    Output schema: ``timestamp`` (the greatest tuple timestamp in the
    window) followed by one float column per :class:`AggregateSpec`.
    Used with the RStream stream function (§2.4 default).
    """

    def __init__(self, input_schema: Schema, specs: "list[AggregateSpec]") -> None:
        super().__init__(input_schema)
        if not specs:
            raise QueryError("aggregation needs at least one aggregate function")
        for spec in specs:
            if spec.column is not None and spec.column not in input_schema:
                raise QueryError(f"aggregate references unknown column {spec.column!r}")
        self.specs = list(specs)
        attributes = [Attribute(TIMESTAMP_ATTRIBUTE, "long")]
        attributes += [Attribute(s.alias, s.output_type) for s in self.specs]
        self._output_schema = Schema(tuple(attributes), name=f"{input_schema.name}_agg")

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    def cost_profile(self) -> CostProfile:
        return CostProfile(kind="aggregation", aggregate_count=len(self.specs))

    # -- batch operator function ------------------------------------------

    def _columns_needed(self) -> "tuple[set[str], set[str]]":
        """Columns needing (sums, extrema) structures."""
        sums, extrema = set(), set()
        for spec in self.specs:
            if spec.function in ("sum", "avg"):
                sums.add(spec.column)
            elif spec.function in ("min", "max"):
                extrema.add(spec.column)
        return sums, extrema

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        batch, windows = slice_.batch, slice_.windows
        m = len(windows)
        if m == 0:
            return BatchResult(complete=TupleBatch.empty(self._output_schema))
        starts, ends = windows.starts, windows.ends
        counts = (ends - starts).astype(np.float64)
        ts = batch.timestamps if len(batch) else np.zeros(0, dtype=np.int64)
        last_ts = np.zeros(m, dtype=np.int64)
        nonempty = ends > starts
        last_ts[nonempty] = ts[ends[nonempty] - 1]

        sum_cols, extrema_cols = self._columns_needed()
        sums: dict[str, np.ndarray] = {}
        mins: dict[str, np.ndarray] = {}
        maxs: dict[str, np.ndarray] = {}
        for name in sum_cols:
            sums[name] = PrefixRangeAggregator(batch.column(name)).query(starts, ends)
        for name in extrema_cols:
            values = batch.column(name)
            mins[name] = SparseTableRangeAggregator(values, "min").query(starts, ends)
            maxs[name] = SparseTableRangeAggregator(values, "max").query(starts, ends)

        def spec_values(spec: AggregateSpec, sel: np.ndarray) -> np.ndarray:
            total = sums.get(spec.column, np.zeros(m))[sel] if spec.column else None
            minimum = mins.get(spec.column, np.full(m, np.inf))[sel] if spec.column else None
            maximum = maxs.get(spec.column, np.full(m, -np.inf))[sel] if spec.column else None
            return finalize(spec.function, total, counts[sel], minimum, maximum)

        complete_mask = windows.mask(FragmentState.COMPLETE) & nonempty
        out_columns = {TIMESTAMP_ATTRIBUTE: last_ts[complete_mask]}
        for spec in self.specs:
            out_columns[spec.alias] = spec_values(spec, complete_mask)
        complete = TupleBatch.from_columns(self._output_schema, **out_columns)

        partials: dict[int, WindowAccumulator] = {}
        closed: list[int] = []
        boundary = ~windows.mask(FragmentState.COMPLETE)
        # Many boundary windows of a small-slide query share the exact same
        # fragment range (e.g. every PENDING window spans the whole batch);
        # compute one payload per distinct range and share it — safe
        # because merging never mutates payloads.
        shared: dict[tuple[int, int], WindowAccumulator] = {}
        for idx in np.nonzero(boundary)[0]:
            wid = int(windows.window_ids[idx])
            key = (int(starts[idx]), int(ends[idx]))
            payload = shared.get(key)
            if payload is None:
                empty = counts[idx] == 0
                columns = {}
                for name in sum_cols | extrema_cols:
                    # Empty fragments answer NaN from the sparse table
                    # (nothing to emit); the mergeable partial needs the
                    # ±inf identities instead, so a later fragment's
                    # real extremum survives the merge.
                    columns[name] = Accumulator(
                        total=float(sums.get(name, np.zeros(m))[idx]),
                        count=counts[idx],
                        minimum=np.inf
                        if empty
                        else float(mins.get(name, np.full(m, np.inf))[idx]),
                        maximum=-np.inf
                        if empty
                        else float(maxs.get(name, np.full(m, -np.inf))[idx]),
                    )
                payload = WindowAccumulator(
                    columns=columns,
                    count=float(counts[idx]),
                    last_timestamp=int(last_ts[idx]),
                )
                shared[key] = payload
            partials[wid] = payload
            if windows.states[idx] == int(FragmentState.CLOSING):
                closed.append(wid)
        stats = {
            "selectivity": 1.0,
            "fragments": float(m),
            "tuples": float(len(batch)),
        }
        return BatchResult(complete=complete, partials=partials, closed_ids=closed, stats=stats)

    # -- assembly operator function -----------------------------------------

    def merge_partials(
        self, first: WindowAccumulator, second: WindowAccumulator
    ) -> WindowAccumulator:
        return first.merge(second)

    def finalize_window(self, window_id: int, payload: WindowAccumulator) -> "TupleBatch | None":
        if payload.count == 0:
            return None
        row = {TIMESTAMP_ATTRIBUTE: np.array([payload.last_timestamp], dtype=np.int64)}
        for spec in self.specs:
            acc = payload.columns.get(spec.column) if spec.column else None
            if acc is None:
                acc = Accumulator(count=payload.count)
            else:
                acc = Accumulator(acc.total, payload.count, acc.minimum, acc.maximum)
            row[spec.alias] = np.array([spec.finalize(acc)], dtype=np.float64)
        return TupleBatch.from_columns(self._output_schema, **row)
