"""GROUP-BY aggregation γ with optional HAVING (§5.3).

The batch operator function maintains one group table per window fragment.
On the CPU this is modelled with vectorised grouping (``np.unique`` +
scatter-adds — the dense equivalent of the paper's pooled hash tables);
the GPGPU path uses the open-addressing table in :mod:`repro.gpu.hashtable`.
Fragment group tables are mergeable *columnar* payloads — sorted key
rows plus (groups × 4) accumulator blocks — so windows spanning several
query tasks are assembled exactly like plain aggregates, and the
processes backend ships them over its completion queue as a handful of
numpy arrays instead of per-group Python objects (the PR 4
result-serialisation tax).

HAVING re-uses the selection machinery: the predicate is evaluated over
the emitted (timestamp, groups, aggregates) rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import QueryError
from ..relational.expressions import Predicate
from ..relational.schema import Attribute, Schema, TIMESTAMP_ATTRIBUTE
from ..relational.tuples import TupleBatch
from ..windows.assigner import FragmentState
from .aggregate_functions import AggregateSpec
from .base import BatchResult, CostProfile, Operator, StreamSlice


def _empty_keys() -> np.ndarray:
    return np.zeros((0, 0), dtype=np.int64)


def _empty_counts() -> np.ndarray:
    return np.zeros(0, dtype=np.float64)


@dataclass
class GroupedWindowAccumulator:
    """Partial per-group aggregates of one window across fragments.

    The payload is **columnar** — plain numpy arrays, exactly the shape
    :meth:`GroupedAggregation._fragment_table` computes:

    * ``keys`` — (groups × key columns) int64, lexicographically sorted
      (``np.unique`` order);
    * ``tables`` — per value column, a (groups × 4) float64 block of
      ``(sum, count, min, max)`` partial aggregates;
    * ``counts`` — per-group tuple counts.

    Columnar payloads matter beyond locality: the processes backend
    ships every partial over the completion queue, and a slide-1 query
    carries one payload per open window per task.  Arrays pickle in
    O(bytes); the former ``dict[key, dict[column, Accumulator]]`` shape
    serialised thousands of tiny Python objects per task — the
    result-serialisation tax PR 4 documented.  Merging is vectorised
    and never mutates either operand (payloads are shared across
    windows whose fragments coincide).
    """

    keys: np.ndarray = field(default_factory=_empty_keys)
    tables: dict[str, np.ndarray] = field(default_factory=dict)
    counts: np.ndarray = field(default_factory=_empty_counts)
    last_timestamp: int = 0

    def merge(self, other: "GroupedWindowAccumulator") -> "GroupedWindowAccumulator":
        last = max(self.last_timestamp, other.last_timestamp)
        if len(self.keys) == 0:
            return GroupedWindowAccumulator(other.keys, other.tables, other.counts, last)
        if len(other.keys) == 0:
            return GroupedWindowAccumulator(self.keys, self.tables, self.counts, last)
        stacked_keys = np.concatenate([self.keys, other.keys])
        merged_keys, inverse = np.unique(stacked_keys, axis=0, return_inverse=True)
        n_groups = len(merged_keys)
        counts = np.bincount(
            inverse,
            weights=np.concatenate([self.counts, other.counts]),
            minlength=n_groups,
        )
        tables: dict[str, np.ndarray] = {}
        for name in {*self.tables, *other.tables}:
            mine = self._table(name)
            theirs = other._table(name)
            stacked = np.concatenate([mine, theirs])
            acc = np.empty((n_groups, 4), dtype=np.float64)
            acc[:, 0] = np.bincount(inverse, weights=stacked[:, 0], minlength=n_groups)
            acc[:, 1] = np.bincount(inverse, weights=stacked[:, 1], minlength=n_groups)
            acc[:, 2] = np.full(n_groups, np.inf)
            np.minimum.at(acc[:, 2], inverse, stacked[:, 2])
            acc[:, 3] = np.full(n_groups, -np.inf)
            np.maximum.at(acc[:, 3], inverse, stacked[:, 3])
            tables[name] = acc
        return GroupedWindowAccumulator(merged_keys, tables, counts, last)

    def _table(self, name: str) -> np.ndarray:
        block = self.tables.get(name)
        if block is None:
            block = np.empty((len(self.keys), 4), dtype=np.float64)
            block[:, 0] = 0.0
            block[:, 1] = 0.0
            block[:, 2] = np.inf
            block[:, 3] = -np.inf
        return block


class GroupedAggregation(Operator):
    """γ: GROUP-BY over one or more key columns, with aggregates.

    Output schema: ``timestamp``, the group columns (input types), then one
    float column per aggregate.  One output row per (window, group), rows
    of a window sorted by group key for determinism.
    """

    def __init__(
        self,
        input_schema: Schema,
        group_columns: "list[str]",
        specs: "list[AggregateSpec]",
        having: "Predicate | None" = None,
        derived_columns: "dict[str, tuple] | None" = None,
    ) -> None:
        """``derived_columns`` maps extra integer-valued key names to an
        ``(expression, type_name)`` pair evaluated per batch — e.g. LRB3's
        ``segment = position / 5280`` grouping key."""
        super().__init__(input_schema)
        if not group_columns:
            raise QueryError("GROUP-BY needs at least one key column")
        if not specs:
            raise QueryError("GROUP-BY needs at least one aggregate function")
        self.derived_columns = dict(derived_columns or {})
        for name in group_columns:
            if name not in input_schema and name not in self.derived_columns:
                raise QueryError(f"GROUP-BY references unknown column {name!r}")
        for spec in specs:
            if spec.column is not None and spec.column not in input_schema:
                raise QueryError(f"aggregate references unknown column {spec.column!r}")
        self.group_columns = list(group_columns)
        self.specs = list(specs)
        self.having = having
        attributes = [Attribute(TIMESTAMP_ATTRIBUTE, "long")]
        attributes += [
            Attribute(
                name,
                self.derived_columns[name][1]
                if name in self.derived_columns
                else input_schema.attribute(name).type_name,
            )
            for name in self.group_columns
        ]
        attributes += [Attribute(s.alias, s.output_type) for s in self.specs]
        self._output_schema = Schema(
            tuple(attributes), name=f"{input_schema.name}_groupby"
        )
        if having is not None:
            unknown = having.references() - set(self._output_schema.attribute_names)
            if unknown:
                raise QueryError(
                    f"HAVING references columns not in the output: {sorted(unknown)}"
                )

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            kind="aggregation",
            aggregate_count=len(self.specs),
            has_group_by=True,
            predicate_tree=self.having,
        )

    # -- grouping helpers ----------------------------------------------------

    def _value_columns(self) -> "list[str]":
        return sorted({s.column for s in self.specs if s.column is not None})

    def _key_arrays(self, batch: TupleBatch) -> "dict[str, np.ndarray]":
        """Per-batch group-key columns, evaluating derived keys once."""
        arrays: dict[str, np.ndarray] = {}
        for name in self.group_columns:
            if name in self.derived_columns:
                expr, __ = self.derived_columns[name]
                arrays[name] = np.asarray(expr.evaluate(batch)).astype(np.int64)
            else:
                arrays[name] = np.asarray(batch.column(name)).astype(np.int64)
        return arrays

    def _fragment_table(
        self,
        batch: TupleBatch,
        start: int,
        stop: int,
        key_arrays: "dict[str, np.ndarray] | None" = None,
    ) -> "tuple[np.ndarray, dict[str, np.ndarray], np.ndarray]":
        """Per-group accumulators over batch rows ``[start, stop)``.

        Returns (group-key rows, per-column stacked accumulator arrays,
        counts) where keys are a (groups × key columns) int64 array in
        ``np.unique`` order and each value column maps to a (groups × 4)
        array of (sum, count, min, max) — the columnar payload shape.
        """
        if key_arrays is None:
            key_arrays = self._key_arrays(batch)
        keys = np.empty((stop - start, len(self.group_columns)), dtype=np.int64)
        for j, name in enumerate(self.group_columns):
            keys[:, j] = key_arrays[name][start:stop]
        unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
        n_groups = len(unique_keys)
        counts = np.bincount(inverse, minlength=n_groups).astype(np.float64)
        tables: dict[str, np.ndarray] = {}
        for name in self._value_columns():
            values = np.asarray(batch.column(name)[start:stop], dtype=np.float64)
            acc = np.empty((n_groups, 4), dtype=np.float64)
            acc[:, 0] = np.bincount(inverse, weights=values, minlength=n_groups)
            acc[:, 1] = counts
            acc[:, 2] = np.full(n_groups, np.inf)
            np.minimum.at(acc[:, 2], inverse, values)
            acc[:, 3] = np.full(n_groups, -np.inf)
            np.maximum.at(acc[:, 3], inverse, values)
            tables[name] = acc
        return unique_keys, tables, counts

    def _emit_rows(
        self,
        window_ts: "list[int]",
        window_groups: "list[tuple[np.ndarray, dict[str, np.ndarray], np.ndarray]]",
    ) -> TupleBatch:
        """Rows for a sequence of windows' final group tables."""
        ts_out: list[np.ndarray] = []
        key_out: list[np.ndarray] = []
        agg_out: dict[str, list[np.ndarray]] = {s.alias: [] for s in self.specs}
        for ts, (keys, tables, counts) in zip(window_ts, window_groups):
            n = len(keys)
            if n == 0:
                continue
            order = np.lexsort(np.asarray(keys, dtype=np.int64).T[::-1])
            ts_out.append(np.full(n, ts, dtype=np.int64))
            key_out.append(np.asarray(keys, dtype=np.int64)[order])
            for spec in self.specs:
                if spec.column is None:
                    values = counts[order]
                else:
                    acc = tables[spec.column][order]
                    values = _finalize_array(spec.function, acc)
                agg_out[spec.alias].append(values)
        if not ts_out:
            return TupleBatch.empty(self._output_schema)
        columns = {TIMESTAMP_ATTRIBUTE: np.concatenate(ts_out)}
        keys = np.concatenate(key_out)
        for j, name in enumerate(self.group_columns):
            columns[name] = keys[:, j]
        for alias, chunks in agg_out.items():
            columns[alias] = np.concatenate(chunks)
        out = TupleBatch.from_columns(self._output_schema, **columns)
        if self.having is not None:
            out = out.filter(self.having.evaluate(out))
        return out

    # -- batch operator function ----------------------------------------------

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        batch, windows = slice_.batch, slice_.windows
        if len(windows) == 0:
            return BatchResult(complete=TupleBatch.empty(self._output_schema))
        ts = batch.timestamps if len(batch) else np.zeros(0, dtype=np.int64)
        key_arrays = self._key_arrays(batch) if len(batch) else None
        complete_ts: list[int] = []
        complete_groups = []
        partials: dict[int, GroupedWindowAccumulator] = {}
        closed: list[int] = []
        total_groups = 0.0
        # Boundary windows sharing a fragment range share one payload
        # object (merging never mutates), like the plain aggregation path.
        shared: dict[tuple[int, int], GroupedWindowAccumulator] = {}
        for idx in range(len(windows)):
            start, stop = int(windows.starts[idx]), int(windows.ends[idx])
            state = int(windows.states[idx])
            wid = int(windows.window_ids[idx])
            if stop <= start and state == int(FragmentState.COMPLETE):
                continue
            if state != int(FragmentState.COMPLETE):
                payload = shared.get((start, stop))
                if payload is not None:
                    partials[wid] = payload
                    if state == int(FragmentState.CLOSING):
                        closed.append(wid)
                    continue
            keys, tables, counts = self._fragment_table(
                batch, start, stop, key_arrays
            )
            total_groups += len(keys)
            last_ts = int(ts[stop - 1]) if stop > start else 0
            if state == int(FragmentState.COMPLETE):
                complete_ts.append(last_ts)
                complete_groups.append((keys, tables, counts))
            else:
                # The fragment table already *is* the columnar payload.
                payload = GroupedWindowAccumulator(
                    keys=keys, tables=tables, counts=counts, last_timestamp=last_ts
                )
                shared[(start, stop)] = payload
                partials[wid] = payload
                if state == int(FragmentState.CLOSING):
                    closed.append(wid)
        complete = self._emit_rows(complete_ts, complete_groups)
        stats = {
            "selectivity": 1.0,
            "fragments": float(len(windows)),
            "groups": total_groups / max(1, len(windows)),
            "tuples": float(len(batch)),
        }
        return BatchResult(complete=complete, partials=partials, closed_ids=closed, stats=stats)

    # -- assembly operator function ---------------------------------------------

    def merge_partials(
        self, first: GroupedWindowAccumulator, second: GroupedWindowAccumulator
    ) -> GroupedWindowAccumulator:
        return first.merge(second)

    def finalize_window(
        self, window_id: int, payload: GroupedWindowAccumulator
    ) -> "TupleBatch | None":
        if len(payload.keys) == 0:
            return None
        tables = {name: payload._table(name) for name in self._value_columns()}
        return self._emit_rows(
            [payload.last_timestamp], [(payload.keys, tables, payload.counts)]
        ) or None


def _finalize_array(function: str, acc: np.ndarray) -> np.ndarray:
    """Vectorised finalisation over a (groups × 4) accumulator block."""
    from .aggregate_functions import finalize

    return np.asarray(
        finalize(function, acc[:, 0], acc[:, 1], acc[:, 2], acc[:, 3]),
        dtype=np.float64,
    )
