"""User-defined operator functions (§2.4).

A :class:`WindowUdf` wraps a per-window Python function
``f(windows: list[TupleBatch]) -> TupleBatch`` (one input batch per
stream).  The generic fragment decomposition retains raw fragment tuples
as the partial payload and applies the function once all fragments of a
window are present — always correct, at the cost of buffering, which is
the price the paper notes for functions without cheaper decompositions.

:func:`partition_join` builds the paper's example n-ary partition-join UDF:
it partitions every input window on a key column and joins corresponding
partitions — behaviour that a standard θ-join cannot express.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import ExecutionError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..windows.assigner import FragmentState
from .base import BatchResult, CostProfile, Operator, StreamSlice


@dataclass
class UdfPartial:
    """Raw fragments of one window, per input stream."""

    fragments: "list[TupleBatch]"
    done: "list[bool]"


class WindowUdf(Operator):
    """Operator defined by an arbitrary per-window function."""

    requires_merged_ready = True

    def __init__(
        self,
        input_schemas: "list[Schema]",
        output_schema: Schema,
        function: "Callable[[list[TupleBatch]], TupleBatch]",
        ops_per_tuple: float = 8.0,
    ) -> None:
        if not input_schemas:
            raise ExecutionError("a UDF needs at least one input schema")
        super().__init__(input_schemas[0])
        self.input_schemas = list(input_schemas)
        self.arity = len(input_schemas)
        self._output_schema = output_schema
        self._function = function
        self._ops_per_tuple = ops_per_tuple

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    def cost_profile(self) -> CostProfile:
        return CostProfile(kind="udf", ops_per_tuple=self._ops_per_tuple)

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        if len(inputs) != self.arity:
            raise ExecutionError(
                f"UDF expects {self.arity} input(s), got {len(inputs)}"
            )
        indexes = [
            {int(w): i for i, w in enumerate(s.windows.window_ids)} for s in inputs
        ]
        window_ids = sorted(set().union(*[set(ix) for ix in indexes]))
        chunks: list[TupleBatch] = []
        partials: dict[int, UdfPartial] = {}
        closed: list[int] = []
        for wid in window_ids:
            fragments: list[TupleBatch] = []
            done: list[bool] = []
            local: list[bool] = []
            for s, index in zip(inputs, indexes):
                idx = index.get(wid)
                if idx is None:
                    fragments.append(TupleBatch.empty(s.batch.schema))
                    done.append(False)
                    local.append(False)
                    continue
                start, stop = int(s.windows.starts[idx]), int(s.windows.ends[idx])
                state = int(s.windows.states[idx])
                fragments.append(s.batch.slice(start, stop))
                done.append(
                    state in (int(FragmentState.COMPLETE), int(FragmentState.CLOSING))
                )
                local.append(state == int(FragmentState.COMPLETE))
            if all(local):
                result = self._function(fragments)
                if len(result):
                    chunks.append(result)
            else:
                partials[wid] = UdfPartial(fragments=fragments, done=done)
                if all(done):
                    closed.append(wid)
        complete = (
            TupleBatch.concat(chunks)
            if chunks
            else TupleBatch.empty(self._output_schema)
        )
        stats = {
            "selectivity": 1.0,
            "tuples": float(sum(len(s.batch) for s in inputs)),
            "fragments": float(len(window_ids)),
        }
        return BatchResult(complete=complete, partials=partials, closed_ids=closed, stats=stats)

    def merge_partials(self, first: UdfPartial, second: UdfPartial) -> UdfPartial:
        fragments = [
            TupleBatch.concat([a, b]) for a, b in zip(first.fragments, second.fragments)
        ]
        done = [a or b for a, b in zip(first.done, second.done)]
        return UdfPartial(fragments=fragments, done=done)

    def finalize_window(self, window_id: int, payload: UdfPartial) -> "TupleBatch | None":
        result = self._function(payload.fragments)
        return result if len(result) else None

    def window_ready(self, payload: UdfPartial) -> bool:
        return all(payload.done)


def partition_join(
    schemas: "list[Schema]", key: str, output_schema: Schema,
    combine: "Callable[[list[TupleBatch]], TupleBatch]",
) -> WindowUdf:
    """n-ary partition join (§2.4's UDF example).

    Partitions each input window on ``key`` and applies ``combine`` to the
    per-partition batches (one per stream); partitions missing from any
    stream are skipped.
    """

    def function(windows: "list[TupleBatch]") -> TupleBatch:
        keys = [np.unique(np.asarray(w.column(key))) for w in windows if len(w)]
        if len(keys) < len(windows):
            return TupleBatch.empty(output_schema)
        shared = keys[0]
        for other in keys[1:]:
            shared = np.intersect1d(shared, other)
        chunks = []
        for value in shared:
            parts = [w.filter(np.asarray(w.column(key)) == value) for w in windows]
            result = combine(parts)
            if len(result):
                chunks.append(result)
        if not chunks:
            return TupleBatch.empty(output_schema)
        return TupleBatch.concat(chunks)

    return WindowUdf(schemas, output_schema, function)
