"""DISTINCT projection per window (used by LRB2).

``SELECT DISTINCT ...`` over a windowed stream emits, per window, the set
of distinct projected rows.  Fragments contribute their local distinct
sets; assembly is a set union, so the decomposition is associative and
commutative like the paper's count/max examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.expressions import Expression
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..windows.assigner import FragmentState
from .base import BatchResult, CostProfile, Operator, StreamSlice
from .projection import Projection


@dataclass
class DistinctPartial:
    """Distinct projected rows of one window across fragments."""

    rows: np.ndarray  # structured array in the output schema


class DistinctProjection(Operator):
    """π_distinct: per-window duplicate elimination after projection."""

    def __init__(
        self,
        input_schema: Schema,
        columns: "list[tuple[str, Expression]]",
    ) -> None:
        super().__init__(input_schema)
        self._projection = Projection(input_schema, columns)

    @property
    def output_schema(self) -> Schema:
        return self._projection.output_schema

    def cost_profile(self) -> CostProfile:
        inner = self._projection.cost_profile()
        # Duplicate elimination hashes each projected tuple once.
        return CostProfile(
            kind="aggregation",
            ops_per_tuple=inner.ops_per_tuple,
            has_group_by=True,
            aggregate_count=1,
        )

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        projected = self._projection.process_batch(inputs).complete
        windows = slice_.windows
        chunks: list[np.ndarray] = []
        partials: dict[int, DistinctPartial] = {}
        closed: list[int] = []
        for idx in range(len(windows)):
            start, stop = int(windows.starts[idx]), int(windows.ends[idx])
            state = int(windows.states[idx])
            wid = int(windows.window_ids[idx])
            rows = np.unique(projected.data[start:stop])
            if state == int(FragmentState.COMPLETE):
                if len(rows):
                    chunks.append(rows)
            else:
                partials[wid] = DistinctPartial(rows=rows)
                if state == int(FragmentState.CLOSING):
                    closed.append(wid)
        data = np.concatenate(chunks) if chunks else np.empty(0, dtype=self.output_schema.dtype)
        complete = TupleBatch(self.output_schema, data)
        stats = {
            "selectivity": 1.0,
            "fragments": float(len(windows)),
            "tuples": float(len(slice_.batch)),
        }
        return BatchResult(complete=complete, partials=partials, closed_ids=closed, stats=stats)

    def merge_partials(self, first: DistinctPartial, second: DistinctPartial) -> DistinctPartial:
        return DistinctPartial(rows=np.unique(np.concatenate([first.rows, second.rows])))

    def finalize_window(self, window_id: int, payload: DistinctPartial) -> "TupleBatch | None":
        if len(payload.rows) == 0:
            return None
        return TupleBatch(self.output_schema, payload.rows)
