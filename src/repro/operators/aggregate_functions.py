"""Aggregate functions and their partial-aggregate algebra.

SABER's window fragments force every aggregate into a *partial* form that
can be (i) computed per fragment, (ii) merged associatively across
fragments/tasks, and (iii) finalised into the query's output value (§3,
§5.3).  We carry one uniform accumulator — ``(sum, count, min, max)`` —
from which all supported functions (``sum``, ``count``, ``avg``, ``min``,
``max``) finalise.  ``sum``/``count`` are invertible (prefix-sum friendly);
``min``/``max`` are merged via the sparse-table path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import QueryError

SUPPORTED_FUNCTIONS = ("sum", "count", "avg", "min", "max")


@dataclass
class Accumulator:
    """Mergeable partial aggregate for one (window, group) cell."""

    total: float = 0.0
    count: float = 0.0
    minimum: float = np.inf
    maximum: float = -np.inf

    def merge(self, other: "Accumulator") -> "Accumulator":
        return Accumulator(
            total=self.total + other.total,
            count=self.count + other.count,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @classmethod
    def of(cls, values: np.ndarray) -> "Accumulator":
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            return cls()
        return cls(
            total=float(values.sum()),
            count=float(len(values)),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregation in a query: ``fn(column) as alias``."""

    function: str
    column: "str | None"
    alias: str = ""

    def __post_init__(self) -> None:
        if self.function not in SUPPORTED_FUNCTIONS:
            raise QueryError(
                f"unsupported aggregate function {self.function!r}; "
                f"expected one of {SUPPORTED_FUNCTIONS}"
            )
        if self.function != "count" and self.column is None:
            raise QueryError(f"{self.function} requires a column")
        if not self.alias:
            column = self.column or "star"
            object.__setattr__(self, "alias", f"{self.function}_{column}")

    @property
    def output_type(self) -> str:
        return "float"

    def finalize(self, acc: Accumulator) -> float:
        """Output value from a fully merged accumulator."""
        return finalize(self.function, acc.total, acc.count, acc.minimum, acc.maximum)


def finalize(function, total, count, minimum, maximum):
    """Finalise accumulator fields; vectorised over numpy arrays.

    Empty cells (count == 0) finalise to NaN, matching SQL's NULL for
    aggregates over empty groups (except ``count`` which is 0).
    """
    if function == "count":
        return count
    empty = count == 0
    if function == "sum":
        value = total
    elif function == "avg":
        with np.errstate(divide="ignore", invalid="ignore"):
            value = total / count if np.ndim(count) else (
                total / count if count else float("nan")
            )
    elif function == "min":
        value = minimum
    elif function == "max":
        value = maximum
    else:
        raise QueryError(f"unsupported aggregate function {function!r}")
    return np.where(empty, np.nan, value) if np.ndim(value) else (
        float("nan") if empty else value
    )
