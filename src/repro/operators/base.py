"""Operator API: the f_f / f_b / f_a decomposition of §3.

A query's operator function ``f^q`` is decomposed into

* a **batch operator function** ``f_b`` (:meth:`Operator.process_batch`)
  that processes all window fragments of a stream batch at once, using
  incremental computation where possible;
* an **assembly operator function** ``f_a`` (:meth:`Operator.merge_partials`
  + :meth:`Operator.finalize_window`) that combines the fragment results of
  windows spanning several query tasks.

``process_batch`` returns a :class:`BatchResult`:

* ``complete`` — final output rows for work wholly contained in this task
  (per-tuple IStream output of π/σ, and results of COMPLETE windows);
* ``partials`` — per-window payloads for boundary windows (OPENING /
  CLOSING / PENDING fragments) that the result stage merges across tasks;
* ``closed_ids`` — boundary windows whose last fragment is in this task,
  i.e. they can be finalised once all earlier partials are merged;
* ``stats`` — measured workload characteristics (selectivity, join pairs,
  group counts) consumed by the hardware cost models and by HLS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..errors import ExecutionError
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..relational.expressions import Predicate
from ..windows.assigner import WindowSet


@dataclass
class StreamSlice:
    """One input stream's share of a query task.

    ``global_start`` is the index of the batch's first tuple in the whole
    stream (the dispatcher's start pointer in tuples); the window set was
    computed against it by the execution stage.
    """

    batch: TupleBatch
    windows: WindowSet
    global_start: int = 0


@dataclass
class BatchResult:
    """Output of a batch operator function for one query task."""

    complete: "TupleBatch | None"
    partials: dict[int, Any] = field(default_factory=dict)
    closed_ids: list[int] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def output_bytes(self) -> int:
        return self.complete.size_bytes if self.complete is not None else 0


@dataclass(frozen=True)
class CostProfile:
    """Operator characteristics consumed by the hardware cost models.

    The models combine these *static* properties with the *measured*
    per-task statistics in :attr:`BatchResult.stats`.

    Attributes:
        kind: operator family (``projection`` | ``selection`` |
            ``aggregation`` | ``join`` | ``udf``).
        ops_per_tuple: arithmetic operations applied to each tuple.
        predicate_tree: the selection predicate, if any — the CPU model
            asks it for short-circuited evaluation counts, the GPGPU model
            charges every atomic comparison (SIMD lanes do not diverge).
        aggregate_count: number of aggregate functions maintained.
        has_group_by: whether a hash table is maintained per fragment.
        join_predicate_count: atomic predicates evaluated per tuple pair.
        materialized_intermediates: intermediate ``TupleBatch``
            materialisations the operator performs between chained
            stages (an unfused σ∘π / σ∘α chain compacts survivors into
            a full-width batch that the next stage re-reads).  The CPU
            model charges a write + re-read per surviving tuple per
            intermediate; a fused kernel
            (:mod:`repro.core.fusion`) reports 0 here — the mechanism
            that makes fusion visible to the calibrated simulation and
            to HLS.
        cpu_evals_fn: optional map from the *measured* end-to-end
            selectivity to the number of atomic predicates a
            short-circuiting CPU evaluates per tuple.  Workloads set this
            to describe their predicate structure (e.g. the Fig. 16 query
            ``p1 and (p2 or ... or p500)`` evaluates ``1 + sel·499``);
            when absent the CPU conservatively evaluates every atom, like
            the GPGPU's divergence-free SIMD lanes always do.
    """

    kind: str
    ops_per_tuple: float = 0.0
    predicate_tree: "Predicate | None" = None
    aggregate_count: int = 0
    has_group_by: bool = False
    join_predicate_count: int = 0
    materialized_intermediates: int = 0
    cpu_evals_fn: "Callable[[float], float] | None" = None

    @property
    def predicate_count(self) -> int:
        if self.predicate_tree is None:
            return 0
        return self.predicate_tree.predicate_count()

    def cpu_predicate_evaluations(self, selectivity: float) -> float:
        """Predicates evaluated per tuple on the CPU (short-circuiting)."""
        if self.cpu_evals_fn is not None:
            return float(self.cpu_evals_fn(selectivity))
        return float(self.predicate_count)


class Operator:
    """Base class for window-based streaming operators."""

    #: number of input streams the operator consumes.
    arity = 1

    #: True when :meth:`window_ready` must inspect the *merged* payload
    #: (multi-input operators); the result stage then merges eagerly on
    #: every task instead of deferring the merge chain to finalisation.
    requires_merged_ready = False

    def __init__(self, input_schema: Schema) -> None:
        self.input_schema = input_schema

    @property
    def output_schema(self) -> Schema:
        raise NotImplementedError

    def cost_profile(self) -> CostProfile:
        raise NotImplementedError

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        """Batch operator function f_b over one query task's inputs."""
        raise NotImplementedError

    def merge_partials(self, first: Any, second: Any) -> Any:
        """Assembly step f_a over two consecutive tasks' fragment payloads."""
        raise NotImplementedError

    def finalize_window(self, window_id: int, payload: Any) -> "TupleBatch | None":
        """Turn a fully merged payload into the window's result rows."""
        raise NotImplementedError

    def window_ready(self, payload: Any) -> "bool | None":
        """Whether a merged payload can be finalised.

        ``None`` (the default) defers to the per-task ``closed_ids``
        bookkeeping; multi-input operators override this when closure can
        only be decided from the merged state (e.g. a join window that
        closes on its two streams in different tasks).
        """
        return None

    # -- helpers -------------------------------------------------------------

    def _single_input(self, inputs: "list[StreamSlice]") -> StreamSlice:
        if len(inputs) != self.arity:
            raise ExecutionError(
                f"{type(self).__name__} expects {self.arity} input(s), "
                f"got {len(inputs)}"
            )
        return inputs[0]


def emit_order(window_ids: "np.ndarray | list[int]") -> np.ndarray:
    """Sort helper: result emission follows ascending window ids."""
    return np.argsort(np.asarray(window_ids), kind="stable")
