"""Projection operator π (§5.3).

Stateless: the batch operator function is one scan over the stream batch,
evaluating each output expression per tuple.  Under the default IStream
combination (§2.4), every tuple contributes exactly one output tuple the
first time it enters a window, so the output is simply the transformed
batch in arrival order — window fragments never need to be materialised.
This is why projection/selection throughput is independent of the window
slide (Fig. 11a).
"""

from __future__ import annotations

from typing import Any

from ..errors import QueryError
from ..relational.expressions import Expression
from ..relational.schema import Attribute, Schema
from ..relational.tuples import TupleBatch
from .base import BatchResult, CostProfile, Operator, StreamSlice


class Projection(Operator):
    """π over named output expressions.

    ``columns`` maps output attribute names to expressions (plain column
    references or arithmetic).  The paper's PROJ_m queries project *m*
    attributes; PROJ6* additionally applies 100 arithmetic expressions per
    attribute — both shapes are expressible here and drive the cost model
    through :meth:`cost_profile`.
    """

    def __init__(
        self,
        input_schema: Schema,
        columns: "list[tuple[str, Expression]]",
        output_types: "dict[str, str] | None" = None,
    ) -> None:
        super().__init__(input_schema)
        if not columns:
            raise QueryError("projection needs at least one output column")
        self._columns = list(columns)
        types = output_types or {}
        attributes = []
        for name, expr in self._columns:
            if name in types:
                type_name = types[name]
            else:
                refs = expr.references()
                if len(refs) == 1:
                    type_name = input_schema.attribute(next(iter(refs))).type_name
                else:
                    type_name = "float"
            attributes.append(Attribute(name, type_name))
        self._output_schema = Schema(tuple(attributes), name=f"{input_schema.name}_pi")

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    def cost_profile(self) -> CostProfile:
        ops = sum(expr.operation_count() for __, expr in self._columns)
        return CostProfile(kind="projection", ops_per_tuple=float(ops))

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        batch = slice_.batch
        out = TupleBatch.from_columns(
            self._output_schema,
            **{name: expr.evaluate(batch) for name, expr in self._columns},
        )
        return BatchResult(complete=out, stats={"selectivity": 1.0})

    def merge_partials(self, first: Any, second: Any) -> Any:
        raise QueryError("projection has no window partials to merge")

    def finalize_window(self, window_id: int, payload: Any) -> None:
        raise QueryError("projection has no window partials to finalise")


def identity_projection(schema: Schema) -> Projection:
    """π that forwards every attribute unchanged (direct byte forwarding)."""
    from ..relational.expressions import col

    return Projection(schema, [(name, col(name)) for name in schema.attribute_names])
