"""Streaming window θ-join ⋈ (§5.3, Kang et al. [35]).

Two input streams carry their own window definitions; window *i* of the
left stream is joined with window *i* of the right stream (the aligned
window pairs produced by identical window clauses, as in SG3's
``[range 1 slide 1]`` self-join or the synthetic JOIN_r queries).

Within a query task the join of the local fragments is a vectorised
nested-loop over the cross product.  Windows spanning several tasks use a
non-trivial assembly decomposition: a fragment payload retains both the
local join result *and* the raw left/right fragments, and merging payloads
adds the two cross terms::

    merge((r1, a1, b1), (r2, a2, b2)) =
        (r1 + r2 + join(a1, b2) + join(a2, b1),  a1 + a2,  b1 + b2)

which is exactly the paper's "more elaborate decompositions must be
defined" case (§3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ExecutionError, QueryError
from ..relational.expressions import Predicate
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..windows.assigner import FragmentState
from .base import BatchResult, CostProfile, Operator, StreamSlice


@dataclass
class JoinPartial:
    """Mergeable state of one window pair spanning several tasks."""

    result: TupleBatch
    left: TupleBatch
    right: TupleBatch
    left_done: bool
    right_done: bool


class ThetaJoin(Operator):
    """θ-join of two windowed streams on an arbitrary predicate.

    The predicate references left columns by name and right columns by
    their (possibly prefixed) name in the concatenated output schema.
    """

    arity = 2
    requires_merged_ready = True

    def __init__(
        self,
        left_schema: Schema,
        right_schema: Schema,
        predicate: Predicate,
        right_prefix: str = "r_",
    ) -> None:
        super().__init__(left_schema)
        self.left_schema = left_schema
        self.right_schema = right_schema
        self.right_prefix = right_prefix
        self._output_schema = left_schema.concat(right_schema, other_prefix=right_prefix)
        unknown = predicate.references() - set(self._output_schema.attribute_names)
        if unknown:
            raise QueryError(f"join predicate references unknown columns {sorted(unknown)}")
        self.predicate = predicate

    @property
    def output_schema(self) -> Schema:
        return self._output_schema

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            kind="join",
            join_predicate_count=self.predicate.predicate_count(),
        )

    # -- pairwise join core ---------------------------------------------------

    def join_pairs(self, left: TupleBatch, right: TupleBatch) -> TupleBatch:
        """Vectorised nested-loop join of two tuple sequences."""
        nl, nr = len(left), len(right)
        if nl == 0 or nr == 0:
            return TupleBatch.empty(self._output_schema)
        li = np.repeat(np.arange(nl), nr)
        ri = np.tile(np.arange(nr), nl)
        pairs = self._combine(left.take(li), right.take(ri))
        mask = self.predicate.evaluate(pairs)
        return pairs.filter(mask)

    def _combine(self, left: TupleBatch, right: TupleBatch) -> TupleBatch:
        """Row-aligned concatenation into the output schema."""
        columns = {}
        taken = set()
        for name in self.left_schema.attribute_names:
            columns[name] = left.column(name)
            taken.add(name)
        for name in self.right_schema.attribute_names:
            out_name = name if name not in taken else self.right_prefix + name
            columns[out_name] = right.column(name)
        return TupleBatch.from_columns(self._output_schema, **columns)

    # -- batch operator function ------------------------------------------------

    def process_batch(
        self, inputs: "list[StreamSlice]", pair_fn=None
    ) -> BatchResult:
        """Batch join; ``pair_fn`` optionally overrides pair resolution.

        The GPGPU kernel passes its count-then-compact implementation as
        ``pair_fn`` — per call, never by mutating the shared operator,
        which concurrent workers of the threaded backend also execute.
        """
        if len(inputs) != 2:
            raise ExecutionError("ThetaJoin expects exactly two inputs")
        if pair_fn is None:
            pair_fn = self.join_pairs
        left, right = inputs
        lw, rw = left.windows, right.windows
        l_index = {int(w): i for i, w in enumerate(lw.window_ids)}
        r_index = {int(w): i for i, w in enumerate(rw.window_ids)}
        window_ids = sorted(set(l_index) | set(r_index))

        complete_chunks: list[TupleBatch] = []
        partials: dict[int, JoinPartial] = {}
        closed: list[int] = []
        total_pairs = 0.0
        matched = 0.0
        for wid in window_ids:
            l_frag, l_done, l_final = self._fragment(left, lw, l_index.get(wid))
            r_frag, r_done, r_final = self._fragment(right, rw, r_index.get(wid))
            local = pair_fn(l_frag, r_frag)
            total_pairs += len(l_frag) * len(r_frag)
            matched += len(local)
            if l_final and r_final:
                complete_chunks.append(local)
            else:
                partials[wid] = JoinPartial(
                    result=local,
                    left=l_frag,
                    right=r_frag,
                    left_done=l_done,
                    right_done=r_done,
                )
                if l_done and r_done:
                    closed.append(wid)
        complete = (
            TupleBatch.concat(complete_chunks)
            if complete_chunks
            else TupleBatch.empty(self._output_schema)
        )
        selectivity = matched / total_pairs if total_pairs else 0.0
        stats = {
            "selectivity": selectivity,
            "pairs": total_pairs,
            "tuples": float(len(left.batch) + len(right.batch)),
            "fragments": float(len(window_ids)),
        }
        return BatchResult(complete=complete, partials=partials, closed_ids=closed, stats=stats)

    def _fragment(
        self, slice_: StreamSlice, windows, index: "int | None"
    ) -> "tuple[TupleBatch, bool, bool]":
        """(fragment rows, closes-here-or-earlier, COMPLETE-locally)."""
        schema = slice_.batch.schema
        if index is None:
            # The window has no presence in this stream's batch; treat the
            # missing side as done only when its stream has moved past it —
            # conservatively: not done (the result stage merges later tasks).
            return TupleBatch.empty(schema), False, False
        start, stop = int(windows.starts[index]), int(windows.ends[index])
        state = int(windows.states[index])
        frag = slice_.batch.slice(start, stop)
        done = state in (int(FragmentState.COMPLETE), int(FragmentState.CLOSING))
        return frag, done, state == int(FragmentState.COMPLETE)

    # -- assembly operator function ------------------------------------------------

    def merge_partials(self, first: JoinPartial, second: JoinPartial) -> JoinPartial:
        cross_1 = self.join_pairs(first.left, second.right)
        cross_2 = self.join_pairs(second.left, first.right)
        return JoinPartial(
            result=TupleBatch.concat([first.result, second.result, cross_1, cross_2]),
            left=TupleBatch.concat([first.left, second.left]),
            right=TupleBatch.concat([first.right, second.right]),
            left_done=first.left_done or second.left_done,
            right_done=first.right_done or second.right_done,
        )

    def finalize_window(self, window_id: int, payload: JoinPartial) -> "TupleBatch | None":
        return payload.result if len(payload.result) else None

    def window_ready(self, payload: JoinPartial) -> bool:
        return payload.left_done and payload.right_done
