"""Streaming relational operators with the fragment/assembly decomposition."""

from .base import BatchResult, CostProfile, Operator, StreamSlice
from .aggregate_functions import Accumulator, AggregateSpec, SUPPORTED_FUNCTIONS
from .projection import Projection, identity_projection
from .selection import Selection
from .aggregation import Aggregation, WindowAccumulator
from .groupby import GroupedAggregation, GroupedWindowAccumulator
from .join import JoinPartial, ThetaJoin
from .distinct import DistinctProjection
from .compose import FilteredWindows, ProjectedWindows
from .udf import WindowUdf, partition_join

__all__ = [
    "Operator",
    "StreamSlice",
    "BatchResult",
    "CostProfile",
    "Accumulator",
    "AggregateSpec",
    "SUPPORTED_FUNCTIONS",
    "Projection",
    "identity_projection",
    "Selection",
    "Aggregation",
    "WindowAccumulator",
    "GroupedAggregation",
    "GroupedWindowAccumulator",
    "ThetaJoin",
    "JoinPartial",
    "DistinctProjection",
    "FilteredWindows",
    "ProjectedWindows",
    "WindowUdf",
    "partition_join",
]
