"""Operator composition: WHERE / SELECT + windowed aggregation in one task.

Queries like CM2 (``where eventType == 1 ... group by jobId``) filter
tuples *within* each window before aggregating.  :class:`FilteredWindows`
composes a selection predicate with any window-based operator in a single
batch pass: the predicate produces a survivor mask, fragment boundaries
are remapped onto the compacted batch with a prefix sum over the mask
(the same scan used by the GPGPU selection kernel), and the inner
operator runs on the filtered fragments.  :class:`ProjectedWindows`
composes a projection the same way (1:1, so fragment boundaries are
unchanged), which is how ``select(...)`` expressions feed a windowed
aggregation.  Assembly is delegated entirely to the inner operator, so
cross-task window semantics are unchanged.

Both composers *materialise* the intermediate compacted/projected
``TupleBatch`` between the stages (reported as
``CostProfile.materialized_intermediates``); the query-fusion layer
(:mod:`repro.core.fusion`) compiles eligible chains into one
single-pass kernel that skips the intermediates while reusing the exact
prefix-sum remap below.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..errors import QueryError
from ..relational.expressions import Predicate
from ..relational.schema import Schema
from ..relational.tuples import TupleBatch
from ..windows.assigner import WindowSet
from .base import BatchResult, CostProfile, Operator, StreamSlice


class FilteredWindows(Operator):
    """σ applied inside windows, feeding an inner window operator."""

    def __init__(self, predicate: Predicate, inner: Operator) -> None:
        super().__init__(inner.input_schema)
        if inner.arity != 1:
            raise QueryError("FilteredWindows composes single-input operators")
        unknown = predicate.references() - set(inner.input_schema.attribute_names)
        if unknown:
            raise QueryError(
                f"filter predicate references unknown columns {sorted(unknown)}"
            )
        self.predicate = predicate
        self.inner = inner

    @property
    def output_schema(self) -> Schema:
        return self.inner.output_schema

    def cost_profile(self) -> CostProfile:
        inner = self.inner.cost_profile()
        return CostProfile(
            kind=inner.kind,
            ops_per_tuple=inner.ops_per_tuple,
            predicate_tree=self.predicate,
            aggregate_count=inner.aggregate_count,
            has_group_by=inner.has_group_by,
            join_predicate_count=inner.join_predicate_count,
            # The compacted survivor batch handed to the inner operator.
            materialized_intermediates=1 + inner.materialized_intermediates,
        )

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        batch, windows = slice_.batch, slice_.windows
        mask = self.predicate.evaluate(batch)
        survivors = batch.filter(mask)
        # Remap fragment boundaries onto the compacted batch: position i in
        # the original batch lands at prefix[i] survivors in the output.
        prefix = np.zeros(len(batch) + 1, dtype=np.int64)
        np.cumsum(mask, out=prefix[1:])
        remapped = WindowSet(
            window_ids=windows.window_ids,
            starts=prefix[windows.starts],
            ends=prefix[windows.ends],
            states=windows.states,
        )
        inner_slice = StreamSlice(survivors, remapped, slice_.global_start)
        result = self.inner.process_batch([inner_slice])
        selectivity = float(mask.mean()) if len(batch) else 0.0
        result.stats["selectivity"] = selectivity
        return result

    def merge_partials(self, first: Any, second: Any) -> Any:
        return self.inner.merge_partials(first, second)

    def finalize_window(self, window_id: int, payload: Any) -> "TupleBatch | None":
        return self.inner.finalize_window(window_id, payload)

    def window_ready(self, payload: Any) -> "bool | None":
        return self.inner.window_ready(payload)


class ProjectedWindows(Operator):
    """π applied inside windows, feeding an inner window operator.

    Projection is 1:1 per tuple, so fragment boundaries carry over
    unchanged — only the tuple *contents* are rewritten before the inner
    operator (typically an aggregation over computed columns) runs.  The
    projected schema must match the inner operator's input schema
    attribute-for-attribute.
    """

    def __init__(self, projection: Operator, inner: Operator) -> None:
        super().__init__(projection.input_schema)
        if inner.arity != 1:
            raise QueryError("ProjectedWindows composes single-input operators")
        produced = projection.output_schema.attribute_names
        expected = inner.input_schema.attribute_names
        if (
            tuple(produced) != tuple(expected)
            or projection.output_schema.dtype != inner.input_schema.dtype
        ):
            raise QueryError(
                f"projection produces columns {list(produced)} but the inner "
                f"operator expects {list(expected)} (names and types must match)"
            )
        self.projection = projection
        self.inner = inner

    @property
    def output_schema(self) -> Schema:
        return self.inner.output_schema

    def cost_profile(self) -> CostProfile:
        proj = self.projection.cost_profile()
        inner = self.inner.cost_profile()
        return CostProfile(
            kind=inner.kind,
            ops_per_tuple=proj.ops_per_tuple + inner.ops_per_tuple,
            predicate_tree=inner.predicate_tree,
            aggregate_count=inner.aggregate_count,
            has_group_by=inner.has_group_by,
            join_predicate_count=inner.join_predicate_count,
            # The projected batch handed to the inner operator.
            materialized_intermediates=1 + inner.materialized_intermediates,
        )

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        projected = self.projection.process_batch(inputs).complete
        inner_slice = StreamSlice(projected, slice_.windows, slice_.global_start)
        return self.inner.process_batch([inner_slice])

    def merge_partials(self, first: Any, second: Any) -> Any:
        return self.inner.merge_partials(first, second)

    def finalize_window(self, window_id: int, payload: Any) -> "TupleBatch | None":
        return self.inner.finalize_window(window_id, payload)

    def window_ready(self, payload: Any) -> "bool | None":
        return self.inner.window_ready(payload)
