"""Selection operator σ (§5.3).

Stateless, like projection: a single scan evaluating the predicate per
tuple, forwarding the byte representation of selected tuples.  The CPU
implementation short-circuits compound predicates; the GPGPU kernel
evaluates every atomic comparison for every tuple (SIMD lanes cannot
diverge) and compacts survivors with a prefix-sum — the asymmetry that
powers the Fig. 16 adaptivity experiment.
"""

from __future__ import annotations

from typing import Any

from ..errors import QueryError
from ..relational.expressions import Predicate
from ..relational.schema import Schema
from .base import BatchResult, CostProfile, Operator, StreamSlice


class Selection(Operator):
    """σ with an arbitrary compound predicate."""

    def __init__(
        self,
        input_schema: Schema,
        predicate: Predicate,
        cpu_evals_fn=None,
    ) -> None:
        super().__init__(input_schema)
        unknown = predicate.references() - set(input_schema.attribute_names)
        if unknown:
            raise QueryError(f"selection predicate references unknown columns {sorted(unknown)}")
        self.predicate = predicate
        self._cpu_evals_fn = cpu_evals_fn

    @property
    def output_schema(self) -> Schema:
        return self.input_schema

    def cost_profile(self) -> CostProfile:
        return CostProfile(
            kind="selection",
            predicate_tree=self.predicate,
            cpu_evals_fn=self._cpu_evals_fn,
        )

    def process_batch(self, inputs: "list[StreamSlice]") -> BatchResult:
        slice_ = self._single_input(inputs)
        batch = slice_.batch
        mask = self.predicate.evaluate(batch)
        out = batch.filter(mask)
        selectivity = float(mask.mean()) if len(batch) else 0.0
        return BatchResult(complete=out, stats={"selectivity": selectivity})

    def merge_partials(self, first: Any, second: Any) -> Any:
        raise QueryError("selection has no window partials to merge")

    def finalize_window(self, window_id: int, payload: Any) -> None:
        raise QueryError("selection has no window partials to finalise")
