"""Discrete-event simulation substrate."""

from .loop import EventLoop
from .measurements import Measurements, TaskRecord

__all__ = ["EventLoop", "Measurements", "TaskRecord"]
