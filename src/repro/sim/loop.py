"""Deterministic discrete-event loop.

The engine executes as a single-threaded discrete-event simulation:
worker threads, the dispatcher and the GPGPU pipeline are simulation
entities whose actions are scheduled on a virtual clock.  Determinism
comes from (time, sequence) ordering — events at equal times fire in
schedule order — so every engine run is exactly reproducible from the
workload seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Minimal heap-based event loop with virtual time."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()
        self.now = 0.0
        self._events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        event = _Event(self.now + delay, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` at an absolute virtual time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        event = _Event(time, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        event.cancelled = True

    def run(self, until: "float | None" = None, max_events: int = 50_000_000) -> None:
        """Process events until the heap drains or ``until`` is reached."""
        while self._heap:
            event = self._heap[0]
            if until is not None and event.time > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.action()
            self._events_processed += 1
            if self._events_processed > max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events}); likely a livelock"
                )
        if until is not None:
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
