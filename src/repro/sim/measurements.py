"""Performance accounting (virtual or wall-clock time).

Collects the quantities the paper reports: processing throughput
(bytes/s and tuples/s), end-to-end latency, per-processor contribution
splits (Fig. 7), and time series of throughput (Fig. 16).  The sim
backend records virtual times; the threaded backend records wall-clock
times from concurrent workers, so recording is internally locked.
Derived metrics are computed after a run completes.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field

import numpy as np

from ..analysis.lockdep import make_lock


@dataclass
class TaskRecord:
    """One completed query task's accounting entry."""

    query: str
    processor: str
    created: float
    completed: float
    input_bytes: int
    input_tuples: int


@dataclass
class Measurements:
    """Accumulates task records and derives the paper's metrics."""

    records: "list[TaskRecord]" = field(default_factory=list)
    latencies: "list[float]" = field(default_factory=list)
    #: optional observability hook (:meth:`SaberEngine.attach_metrics`):
    #: called with every completed :class:`TaskRecord`, on the completing
    #: worker's thread, outside the accounting lock — it must be cheap.
    on_task: "object | None" = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(
        default_factory=lambda: make_lock("sim.measurements.Measurements._lock"),
        repr=False, compare=False
    )

    def record_task(self, record: TaskRecord) -> None:
        with self._lock:
            self.records.append(record)
        if self.on_task is not None:
            self.on_task(record)

    def record_latency(self, emit_time: float, data_time: float) -> None:
        with self._lock:
            self.latencies.append(emit_time - data_time)

    # -- throughput -----------------------------------------------------------

    def _steady(
        self, warmup_fraction: float, drain_fraction: float = 0.1
    ) -> "list[TaskRecord]":
        """Records completing in the steady window.

        Both the warm-up ramp *and* the drain tail are excluded: once the
        dispatcher stops, stragglers on the slower processor would
        otherwise dominate short runs while the other processor idles.
        """
        if not self.records:
            return []
        completions = sorted(r.completed for r in self.records)
        lo = completions[int(len(completions) * warmup_fraction)]
        hi_index = min(
            len(completions) - 1,
            int(len(completions) * (1.0 - drain_fraction)),
        )
        hi = completions[hi_index]
        if hi <= lo:
            return [r for r in self.records if r.completed >= lo]
        return [r for r in self.records if lo <= r.completed <= hi]

    def throughput_bytes(self, warmup_fraction: float = 0.2) -> float:
        """Steady-state processing throughput in bytes/second."""
        steady = self._steady(warmup_fraction)
        if len(steady) < 2:
            return 0.0
        start = min(r.completed for r in steady)
        end = max(r.completed for r in steady)
        if end <= start:
            return 0.0
        return sum(r.input_bytes for r in steady) / (end - start)

    def throughput_tuples(self, warmup_fraction: float = 0.2) -> float:
        steady = self._steady(warmup_fraction)
        if len(steady) < 2:
            return 0.0
        start = min(r.completed for r in steady)
        end = max(r.completed for r in steady)
        if end <= start:
            return 0.0
        return sum(r.input_tuples for r in steady) / (end - start)

    def processor_share(self, warmup_fraction: float = 0.2) -> "dict[str, float]":
        """Fraction of processed bytes per processor (Fig. 7 split)."""
        steady = self._steady(warmup_fraction)
        total = sum(r.input_bytes for r in steady)
        if not total:
            return {}
        shares: dict[str, float] = {}
        for r in steady:
            shares[r.processor] = shares.get(r.processor, 0.0) + r.input_bytes
        return {p: b / total for p, b in shares.items()}

    def query_throughput_bytes(self, query: str, warmup_fraction: float = 0.2) -> float:
        steady = [r for r in self._steady(warmup_fraction) if r.query == query]
        if len(steady) < 2:
            return 0.0
        start = min(r.completed for r in steady)
        end = max(r.completed for r in steady)
        if end <= start:
            return 0.0
        return sum(r.input_bytes for r in steady) / (end - start)

    # -- latency ---------------------------------------------------------------

    def latency_mean(self) -> float:
        return float(np.mean(self.latencies)) if self.latencies else 0.0

    def latency_percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q)) if self.latencies else 0.0

    # -- time series (Fig. 16) ---------------------------------------------------

    def throughput_series(
        self, bucket_seconds: float, processor: "str | None" = None
    ) -> "tuple[np.ndarray, np.ndarray]":
        """(bucket start times, bytes/s per bucket), optionally one processor."""
        records = [
            r for r in self.records if processor is None or r.processor == processor
        ]
        if not records:
            return np.zeros(0), np.zeros(0)
        end = max(r.completed for r in self.records)
        edges = np.arange(0.0, end + bucket_seconds, bucket_seconds)
        totals = np.zeros(len(edges) - 1)
        times = sorted((r.completed, r.input_bytes) for r in records)
        completed = [t for t, __ in times]
        for i in range(len(edges) - 1):
            lo = bisect.bisect_left(completed, edges[i])
            hi = bisect.bisect_left(completed, edges[i + 1])
            totals[i] = sum(b for __, b in times[lo:hi]) / bucket_seconds
        return edges[:-1], totals
