"""Docs gate: execute every fenced python block in README.md and docs/.

Documentation examples rot silently; this script makes them part of
CI.  Every ```python fenced block is **compiled** (syntax-checked),
and — unless the nearest non-blank line above the fence is the marker
``<!-- docs: no-run -->`` — **executed** in its own subprocess with
the repo's ``src/`` on ``PYTHONPATH`` and a scratch working directory.
A block must therefore be self-contained: imports included, no files
assumed on disk, finishing within the per-block timeout.

Mark a block no-run only when it is an intentional fragment (undefined
names, placeholder paths); fragments still fail the gate if they do
not parse.

Usage::

    python scripts/check_docs.py                 # gate README.md + docs/*.md
    python scripts/check_docs.py docs/api.md     # one file
    python scripts/check_docs.py --list          # show blocks and dispositions
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: marker on the nearest non-blank line above a fence: compile, don't run.
NO_RUN = "<!-- docs: no-run -->"


def default_files() -> "list[Path]":
    return [_ROOT / "README.md"] + sorted((_ROOT / "docs").glob("*.md"))


def extract_blocks(path: Path) -> "list[dict]":
    """The ```python fenced blocks of one markdown file.

    Returns dicts with ``path``, ``line`` (1-based fence line),
    ``code`` and ``run`` (False when the no-run marker precedes the
    fence).
    """
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    fence_line = 0
    run = True
    code: "list[str]" = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped.startswith("```python"):
            in_block = True
            fence_line = number
            code = []
            run = True
            for previous in reversed(lines[: number - 1]):
                if previous.strip():
                    run = NO_RUN not in previous
                    break
            continue
        if in_block and stripped == "```":
            in_block = False
            blocks.append(
                {
                    "path": path,
                    "line": fence_line,
                    "code": "\n".join(code) + "\n",
                    "run": run,
                }
            )
            continue
        if in_block:
            code.append(line)
    if in_block:
        raise SystemExit(f"{path}:{fence_line}: unterminated ```python fence")
    return blocks


def check_block(block: "dict", timeout: float) -> "str | None":
    """Compile (and unless marked no-run, execute) one block; returns
    an error description or None."""
    label = f"{block['path'].relative_to(_ROOT)}:{block['line']}"
    try:
        compile(block["code"], label, "exec")
    except SyntaxError as exc:
        return f"{label}: does not parse: {exc}"
    if not block["run"]:
        return None
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    with tempfile.TemporaryDirectory(prefix="check_docs_") as scratch:
        script = Path(scratch) / "block.py"
        script.write_text(block["code"], encoding="utf-8")
        try:
            proc = subprocess.run(
                [sys.executable, str(script)],
                cwd=scratch,
                env=env,
                capture_output=True,
                text=True,
                timeout=timeout,
            )
        except subprocess.TimeoutExpired:
            return f"{label}: timed out after {timeout:.0f}s"
    if proc.returncode != 0:
        tail = "\n".join(
            (proc.stdout + proc.stderr).strip().splitlines()[-12:]
        )
        return f"{label}: exited {proc.returncode}\n{tail}"
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="markdown files to check (default: README.md and docs/*.md)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="per-block execution timeout in seconds (default 120)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list discovered blocks and their dispositions, don't run",
    )
    args = parser.parse_args(argv)

    files = [f.resolve() for f in args.files] or default_files()
    blocks = [b for f in files for b in extract_blocks(f)]
    if args.list:
        for block in blocks:
            label = f"{block['path'].relative_to(_ROOT)}:{block['line']}"
            mode = "run" if block["run"] else "compile-only"
            print(f"{label}  [{mode}]  ({len(block['code'].splitlines())} lines)")
        return 0

    failures = []
    for block in blocks:
        label = f"{block['path'].relative_to(_ROOT)}:{block['line']}"
        error = check_block(block, args.timeout)
        if error is None:
            mode = "ok" if block["run"] else "compiled"
            print(f"  {mode:>8}  {label}")
        else:
            print(f"  FAIL      {label}")
            failures.append(error)
    if failures:
        print(f"\nDOCS GATE FAILED ({len(failures)} block(s)):", file=sys.stderr)
        for failure in failures:
            print(f"- {failure}", file=sys.stderr)
        return 1
    ran = sum(1 for b in blocks if b["run"])
    print(
        f"docs gate passed: {len(blocks)} python blocks across "
        f"{len(files)} files ({ran} executed, {len(blocks) - ran} compile-only)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
